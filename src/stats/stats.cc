#include "stats/stats.hh"

#include <algorithm>
#include <cmath>
#include "util/format.hh"

namespace rlr::stats
{

StatSet::StatSet(std::string name) : name_(std::move(name)) {}

uint64_t &
StatSet::counter(const std::string &name)
{
    return counters_[name];
}

uint64_t
StatSet::value(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
StatSet::reset()
{
    for (auto &[_, v] : counters_)
        v = 0;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[k, v] : other.counters_)
        counters_[k] += v;
}

std::string
StatSet::dump() const
{
    std::string out;
    for (const auto &[k, v] : counters_) {
        if (name_.empty())
            out += util::format("{} {}\n", k, v);
        else
            out += util::format("{}.{} {}\n", name_, k, v);
    }
    return out;
}

std::vector<std::pair<std::string, uint64_t>>
StatSet::items() const
{
    return {counters_.begin(), counters_.end()};
}

void
RunningStat::sample(double v)
{
    ++n_;
    if (n_ == 1) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (v - mean_);
}

double
RunningStat::variance() const
{
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

std::string
accessConsistencyError(const StatSet &set)
{
    static const char *kTypes[] = {"LD", "RFO", "PF", "WB"};
    for (const char *t : kTypes) {
        const std::string type(t);
        const uint64_t accesses = set.value(type + "_access");
        const uint64_t hits = set.value(type + "_hit");
        const uint64_t misses = set.value(type + "_miss");
        if (hits + misses != accesses) {
            return util::format(
                "{}_hit ({}) + {}_miss ({}) != {}_access ({})",
                type, hits, type, misses, type, accesses);
        }
    }
    return "";
}

double
safeDiv(double a, double b)
{
    return b == 0.0 ? 0.0 : a / b;
}

double
mpki(uint64_t misses, uint64_t instructions)
{
    return safeDiv(static_cast<double>(misses) * 1000.0,
                   static_cast<double>(instructions));
}

double
hitRate(uint64_t hits, uint64_t accesses)
{
    return safeDiv(static_cast<double>(hits),
                   static_cast<double>(accesses));
}

double
speedup(double ipc, double baseline_ipc)
{
    return safeDiv(ipc, baseline_ipc);
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (const auto v : values) {
        if (v <= 0.0)
            return 0.0;
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

} // namespace rlr::stats
