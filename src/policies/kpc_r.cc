#include "policies/kpc_r.hh"

#include <algorithm>

namespace rlr::policies
{

KpcRPolicy::KpcRPolicy(unsigned rrpv_bits, uint32_t leader_sets)
    : RripBase(rrpv_bits), leader_sets_(leader_sets)
{
    util::ensure(leader_sets_ >= 1,
                 "KPC-R: need at least one leader set");
}

void
KpcRPolicy::bind(const cache::CacheGeometry &geom)
{
    RripBase::bind(geom);
    hits_distant_.reset();
    hits_long_.reset();
    accesses_ = 0;
    use_distant_ = false;
}

KpcRPolicy::SetRole
KpcRPolicy::setRole(uint32_t set) const
{
    const uint32_t period =
        std::max(1u, numSets() / leader_sets_);
    if (set % period == 0)
        return SetRole::DistantLeader;
    if (set % period == 1)
        return SetRole::LongLeader;
    return SetRole::Follower;
}

bool
KpcRPolicy::distantSelected() const
{
    return use_distant_;
}

void
KpcRPolicy::onAccess(const cache::AccessContext &ctx)
{
    ++accesses_;
    if (ctx.hit && trace::isDemand(ctx.type)) {
        switch (setRole(ctx.set)) {
          case SetRole::DistantLeader:
            ++hits_distant_;
            break;
          case SetRole::LongLeader:
            ++hits_long_;
            break;
          case SetRole::Follower:
            break;
        }
    }
    // Periodically adopt the leader group with more demand hits,
    // then decay both counters to track phase changes.
    if (accesses_ % 8192 == 0) {
        use_distant_ = hits_distant_.value() > hits_long_.value();
        hits_distant_.set(hits_distant_.value() / 2);
        hits_long_.set(hits_long_.value() / 2);
    }

    if (ctx.hit && ctx.type == trace::AccessType::Prefetch) {
        // Prefetch hits are promoted only partially: KPC-R
        // promotes prefetched lines on prefetch hits only at high
        // prediction confidence, so unneeded prefetches keep aging
        // toward eviction instead of parking at MRU.
        setRrpv(ctx.set, ctx.way,
                static_cast<uint8_t>(maxRrpv() - 1));
        return;
    }
    RripBase::onAccess(ctx);
}

uint8_t
KpcRPolicy::insertionRrpv(const cache::AccessContext &ctx)
{
    bool distant = false;
    switch (setRole(ctx.set)) {
      case SetRole::DistantLeader:
        distant = true;
        break;
      case SetRole::LongLeader:
        distant = false;
        break;
      case SetRole::Follower:
        distant = use_distant_;
        break;
    }
    if (ctx.type == trace::AccessType::Writeback)
        return maxRrpv();
    return distant ? maxRrpv()
                   : static_cast<uint8_t>(maxRrpv() - 1);
}

cache::StorageOverhead
KpcRPolicy::overhead() const
{
    cache::StorageOverhead o;
    // 2-bit RRPV per line + two 10-bit global counters + phase
    // bookkeeping: the paper lists 8.57KB for a 2MB/16-way LLC
    // (the extra fraction over plain RRIP is prefetch-confidence
    // state shared with KPC-P).
    o.bits_per_line = rrpvBits() + 0.14;
    o.global_bits = 2 * 10 + 16;
    return o;
}

} // namespace rlr::policies
