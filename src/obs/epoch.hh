/**
 * @file
 * Epoch time-series sampler: aggregates a cache's access stream
 * into fixed-length epochs (counted in accesses) and exposes the
 * per-epoch series through the stats::Registry under
 * "<prefix>.e<k>_*" paths, so time-resolved behaviour (miss-rate
 * shifts, occupancy ramps, RLR reuse-distance adaptation, victim
 * priority drift) flows through the existing JSON snapshot export
 * and tools/report without any new output channel.
 *
 * Alongside the epoch series the sampler keeps whole-run per-set
 * access/miss heatmap counters (registered as distributions with
 * one bucket per set) and a victim-priority distribution.
 *
 * Like the event log, the sampler is borrowed by a cache and costs
 * only a null-pointer check per access when detached.
 */

#ifndef RLR_OBS_EPOCH_HH
#define RLR_OBS_EPOCH_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "stats/registry.hh"
#include "stats/stats.hh"
#include "trace/record.hh"
#include "util/histogram.hh"

namespace rlr::obs
{

/** One aggregated epoch (also the live accumulator). */
struct EpochSample
{
    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t demand_accesses = 0;
    uint64_t demand_misses = 0;
    uint64_t evictions = 0;
    uint64_t bypasses = 0;
    /** Sum of victim priorities (avg = sum / evictions). */
    uint64_t victim_priority_sum = 0;
    /** Scalar provider values sampled at the epoch boundary. */
    uint64_t occupancy = 0;
    uint64_t scalar = 0;

    bool empty() const { return accesses == 0; }
};

/** Epoch time-series sampler for one cache. */
class EpochSampler
{
  public:
    /** Pull-style provider sampled at every epoch boundary. */
    using Provider = std::function<uint64_t()>;

    /** @param length epoch length in cache accesses (>= 1) */
    explicit EpochSampler(uint64_t length);

    /** Size the heatmap counters; called once by the cache. */
    void bind(uint32_t num_sets);

    /** Occupancy provider (valid-line count), sampled at epoch
     *  boundaries and at finish(). */
    void setOccupancyProvider(Provider p)
    {
        occupancy_ = std::move(p);
    }

    /**
     * Optional policy scalar tracked per epoch (e.g. RLR's
     * predicted reuse distance). @p name becomes the exported
     * counter suffix ("e<k>_<name>").
     */
    void setScalarProvider(std::string name, Provider p);

    /** One access to @p set (hit or miss, any type). */
    void onAccess(uint32_t set, trace::AccessType type, bool hit);

    /** One eviction with the victim's policy priority. */
    void onEviction(uint64_t victim_priority);

    /** One bypassed fill. */
    void onBypass();

    /**
     * Close the current partial epoch (if any) so it appears in
     * the series. Idempotent; called automatically by
     * describeStats so end-of-run snapshots include the tail.
     */
    void finish();

    /** Drop all epochs and counters (end of warmup). */
    void reset();

    uint64_t epochLength() const { return length_; }
    /** Completed epochs (incl. a finished partial tail). */
    uint64_t epochs() const { return epochs_; }

    /** Live view of the accumulating (not yet closed) epoch. */
    const EpochSample &current() const { return cur_; }

    /**
     * Mount the series under @p prefix: "<prefix>.length",
     * "<prefix>.count", per-epoch counters
     * "<prefix>.e<k>_{accesses,misses,demand_accesses,
     * demand_misses,evictions,bypasses,victim_priority_sum,
     * occupancy[,<scalar>]}", the whole-run victim-priority
     * distribution "<prefix>.victim_priority", and the per-set
     * heatmap distributions "<prefix>.set_accesses" /
     * "<prefix>.set_misses" (bucket i = set i).
     */
    void describeStats(stats::Registry &reg,
                       const std::string &prefix);

  private:
    void closeEpoch();

    uint64_t length_;
    uint64_t total_accesses_ = 0;
    uint64_t epochs_ = 0;
    EpochSample cur_;

    Provider occupancy_;
    std::string scalar_name_;
    Provider scalar_;

    /** Closed epochs as named counters ("e<k>_accesses", ...). */
    stats::StatSet series_{"epoch"};

    util::Histogram victim_priority_{64, 1};
    util::Histogram heat_accesses_{1, 1};
    util::Histogram heat_misses_{1, 1};
};

} // namespace rlr::obs

#endif // RLR_OBS_EPOCH_HH
