/**
 * @file
 * A small fixed-size thread pool used to run independent
 * (workload, policy) simulation cells in parallel. Results are
 * deterministic because each cell owns its own RNG and state.
 */

#ifndef RLR_UTIL_THREAD_POOL_HH
#define RLR_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace rlr::util
{

/** Fixed-size worker pool with a FIFO task queue. */
class ThreadPool
{
  public:
    /** @param nthreads worker count; 0 means hardware concurrency. */
    explicit ThreadPool(size_t nthreads = 0);

    /** Drains the queue and joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task; the future resolves with its result. */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> fut = task->get_future();
        {
            std::scoped_lock lock(mutex_);
            queue_.emplace_back([task] { (*task)(); });
        }
        cv_.notify_one();
        return fut;
    }

    /** Block until every queued task has finished. */
    void waitIdle();

    size_t size() const { return workers_.size(); }

    /**
     * Convenience: run fn(i) for i in [0, n) across the pool and
     * wait for completion.
     *
     * If exactly one fn(i) throws, that exception is rethrown
     * here after all workers have joined. When several iterations
     * fail concurrently (iterations already started finish even
     * after a failure is recorded; no new iterations are claimed),
     * every captured message is aggregated into one
     * std::runtime_error ("N worker tasks failed: [0] ...; [1]
     * ..."), so no concurrent failure is silently dropped.
     * Callers that need every iteration to run despite failures
     * must catch inside fn (see sim::SweepRunner).
     */
    static void parallelFor(size_t n, size_t nthreads,
                            const std::function<void(size_t)> &fn);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable idle_cv_;
    size_t active_ = 0;
    bool stop_ = false;
};

} // namespace rlr::util

#endif // RLR_UTIL_THREAD_POOL_HH
