#include "trace/workloads.hh"

#include "util/logging.hh"

namespace rlr::trace
{

namespace
{

constexpr uint64_t kKB = 1024;
constexpr uint64_t kMB = 1024 * 1024;

KernelSpec
stream(uint64_t ws, double weight, double write_frac = 0.0)
{
    KernelSpec k;
    k.kind = KernelKind::Stream;
    k.working_set = ws;
    k.stride = 64;
    k.weight = weight;
    k.write_frac = write_frac;
    return k;
}

KernelSpec
strided(uint64_t ws, uint64_t stride, double weight,
        double write_frac = 0.0)
{
    KernelSpec k;
    k.kind = KernelKind::Strided;
    k.working_set = ws;
    k.stride = stride;
    k.weight = weight;
    k.write_frac = write_frac;
    return k;
}

KernelSpec
loop(uint64_t ws, double weight, double write_frac = 0.1)
{
    KernelSpec k;
    k.kind = KernelKind::Loop;
    k.working_set = ws;
    k.stride = 64;
    k.weight = weight;
    k.write_frac = write_frac;
    return k;
}

/** Loop visited in a fixed permutation (prefetch-proof reuse). */
KernelSpec
sloop(uint64_t ws, double weight, double write_frac = 0.1)
{
    KernelSpec k = loop(ws, weight, write_frac);
    k.shuffled = true;
    return k;
}

KernelSpec
chase(uint64_t ws, double weight)
{
    KernelSpec k;
    k.kind = KernelKind::PointerChase;
    k.working_set = ws;
    k.weight = weight;
    return k;
}

KernelSpec
hotcold(uint64_t ws, double alpha, double weight,
        double write_frac = 0.05)
{
    KernelSpec k;
    k.kind = KernelKind::HotCold;
    k.working_set = ws;
    k.zipf_alpha = alpha;
    k.weight = weight;
    k.write_frac = write_frac;
    return k;
}

KernelSpec
scanthrash(uint64_t ws, double weight, uint64_t phase_hot = 16384,
           uint64_t phase_scan = 16384)
{
    KernelSpec k;
    k.kind = KernelKind::ScanThrash;
    k.working_set = ws;
    k.weight = weight;
    k.phase_hot = phase_hot;
    k.phase_scan = phase_scan;
    return k;
}

WorkloadProfile
profile(std::string name, std::string suite, double mem_ratio,
        double branch_ratio, double branch_noise,
        uint64_t code_footprint, std::vector<KernelSpec> kernels)
{
    WorkloadProfile p;
    p.name = std::move(name);
    p.suite = std::move(suite);
    p.mem_ratio = mem_ratio;
    p.branch_ratio = branch_ratio;
    p.branch_noise = branch_noise;
    p.code_footprint = code_footprint;
    p.kernels = std::move(kernels);
    return p;
}

} // namespace

std::vector<WorkloadProfile>
specWorkloads()
{
    std::vector<WorkloadProfile> w;
    const std::string s = "spec2006";

    // Graph search: dependent pointer walks over a graph that does
    // not fit in the LLC, plus a small node-scratch loop.
    w.push_back(profile("473.astar", s, 0.30, 0.20, 0.06, 64 * kKB,
                        {chase(8 * kMB, 0.6), loop(128 * kKB, 0.4)}));
    // Dense fluid dynamics: long unit-stride sweeps, prefetch
    // friendly, huge footprint.
    w.push_back(profile("410.bwaves", s, 0.40, 0.10, 0.01, 48 * kKB,
                        {stream(48 * kMB, 0.8, 0.1),
                         loop(128 * kKB, 0.2)}));
    // Compression: skewed dictionary lookups + block loops.
    w.push_back(profile("401.bzip2", s, 0.35, 0.16, 0.05, 96 * kKB,
                        {hotcold(4 * kMB, 1.0, 0.5),
                         sloop(512 * kKB, 0.3), stream(8 * kMB, 0.2)}));
    // Stencil with large strides over a grid exceeding the LLC.
    w.push_back(profile("436.cactusADM", s, 0.40, 0.08, 0.01,
                        48 * kKB,
                        {stream(16 * kMB, 0.55, 0.2),
                         strided(8 * kMB, 256, 0.15),
                         loop(96 * kKB, 0.3)}));
    // FEM solver, mostly cache resident.
    w.push_back(profile("454.calculix", s, 0.35, 0.12, 0.02,
                        96 * kKB,
                        {loop(96 * kKB, 0.7),
                         strided(2 * kMB, 64, 0.3)}));
    w.push_back(profile("447.dealII", s, 0.34, 0.14, 0.03, 128 * kKB,
                        {sloop(384 * kKB, 0.5),
                         hotcold(3 * kMB, 0.9, 0.3),
                         stream(6 * kMB, 0.2)}));
    // Quantum chemistry, tiny working set.
    w.push_back(profile("416.gamess", s, 0.33, 0.12, 0.02, 64 * kKB,
                        {loop(48 * kKB, 0.9),
                         strided(512 * kKB, 64, 0.1)}));
    // Compiler: irregular pointer-heavy phases + IR scans.
    w.push_back(profile("403.gcc", s, 0.30, 0.22, 0.08, 384 * kKB,
                        {chase(3 * kMB, 0.35),
                         hotcold(2 * kMB, 0.9, 0.35),
                         stream(12 * kMB, 0.30)}));
    // FDTD solver: streaming with writebacks, very high MPKI.
    w.push_back(profile("459.GemsFDTD", s, 0.45, 0.08, 0.01,
                        48 * kKB,
                        {stream(64 * kMB, 0.75, 0.3),
                         strided(24 * kMB, 128, 0.25)}));
    // Go engine: small data, very branchy.
    w.push_back(profile("445.gobmk", s, 0.28, 0.25, 0.12, 256 * kKB,
                        {loop(64 * kKB, 0.8),
                         hotcold(1 * kMB, 1.0, 0.2)}));
    w.push_back(profile("435.gromacs", s, 0.36, 0.10, 0.02,
                        96 * kKB,
                        {loop(160 * kKB, 0.7),
                         strided(3 * kMB, 64, 0.3)}));
    // Video encoder: block-strided with strong short-term reuse.
    w.push_back(profile("464.h264ref", s, 0.38, 0.14, 0.04,
                        192 * kKB,
                        {strided(640 * kKB, 64, 0.6, 0.15),
                         loop(96 * kKB, 0.4)}));
    w.push_back(profile("456.hmmer", s, 0.40, 0.10, 0.02, 64 * kKB,
                        {loop(80 * kKB, 0.9),
                         strided(1 * kMB, 64, 0.1)}));
    // Lattice-Boltzmann: write-heavy streaming, little reuse.
    w.push_back(profile("470.lbm", s, 0.45, 0.05, 0.01, 32 * kKB,
                        {stream(52 * kMB, 0.85, 0.45),
                         strided(4 * kMB, 128, 0.15)}));
    w.push_back(profile("437.leslie3d", s, 0.42, 0.08, 0.01,
                        48 * kKB,
                        {stream(36 * kMB, 0.6, 0.25),
                         strided(12 * kMB, 192, 0.4)}));
    // Pure streaming, perfectly strided, prefetch friendly.
    w.push_back(profile("462.libquantum", s, 0.35, 0.15, 0.01,
                        24 * kKB,
                        {stream(32 * kMB, 0.95, 0.25),
                         loop(64 * kKB, 0.05)}));
    // Sparse network simplex: giant pointer chases, worst-case MPKI.
    w.push_back(profile("429.mcf", s, 0.35, 0.22, 0.10, 64 * kKB,
                        {chase(64 * kMB, 0.6),
                         hotcold(8 * kMB, 0.9, 0.4)}));
    w.push_back(profile("433.milc", s, 0.40, 0.08, 0.02, 48 * kKB,
                        {stream(24 * kMB, 0.5, 0.2),
                         hotcold(12 * kMB, 0.5, 0.5)}));
    w.push_back(profile("444.namd", s, 0.36, 0.10, 0.02, 96 * kKB,
                        {sloop(224 * kKB, 0.8),
                         strided(2 * kMB, 64, 0.2)}));
    // Discrete-event simulator: working set just beyond the LLC;
    // the canonical recency-thrash victim.
    w.push_back(profile("471.omnetpp", s, 0.33, 0.20, 0.07,
                        256 * kKB,
                        {scanthrash(6 * kMB, 0.5, 73728, 24576),
                         chase(4 * kMB, 0.3),
                         hotcold(2 * kMB, 1.1, 0.2)}));
    w.push_back(profile("400.perlbench", s, 0.32, 0.24, 0.06,
                        512 * kKB,
                        {hotcold(1536 * kKB, 1.2, 0.5),
                         loop(128 * kKB, 0.5)}));
    w.push_back(profile("453.povray", s, 0.30, 0.18, 0.04,
                        128 * kKB,
                        {loop(64 * kKB, 0.9),
                         hotcold(512 * kKB, 1.0, 0.1)}));
    w.push_back(profile("458.sjeng", s, 0.28, 0.24, 0.12,
                        192 * kKB,
                        {hotcold(1536 * kKB, 0.9, 0.6),
                         loop(96 * kKB, 0.4)}));
    // LP solver over sparse matrices: strided sweeps + indirection.
    w.push_back(profile("450.soplex", s, 0.40, 0.14, 0.04,
                        128 * kKB,
                        {strided(20 * kMB, 256, 0.5, 0.15),
                         chase(8 * kMB, 0.25),
                         stream(16 * kMB, 0.25)}));
    // Speech recognition: model scans slightly above LLC capacity.
    w.push_back(profile("482.sphinx3", s, 0.35, 0.12, 0.03,
                        96 * kKB,
                        {scanthrash(5 * kMB, 0.55, 51200, 20480),
                         sloop(256 * kKB, 0.25),
                         stream(8 * kMB, 0.20)}));
    w.push_back(profile("465.tonto", s, 0.34, 0.12, 0.03,
                        128 * kKB,
                        {sloop(256 * kKB, 0.7),
                         strided(3 * kMB, 64, 0.3)}));
    w.push_back(profile("481.wrf", s, 0.40, 0.08, 0.01, 96 * kKB,
                        {stream(24 * kMB, 0.45, 0.2),
                         strided(12 * kMB, 256, 0.15),
                         loop(160 * kKB, 0.4)}));
    // XML transformer: pointer structures + document scans that
    // thrash the LLC.
    w.push_back(profile("483.xalancbmk", s, 0.32, 0.24, 0.06,
                        384 * kKB,
                        {chase(6 * kMB, 0.45),
                         scanthrash(6 * kMB, 0.35, 49152, 16384),
                         hotcold(1 * kMB, 1.2, 0.2)}));
    w.push_back(profile("434.zeusmp", s, 0.40, 0.08, 0.01,
                        64 * kKB,
                        {stream(20 * kMB, 0.4, 0.25),
                         strided(10 * kMB, 192, 0.15),
                         loop(128 * kKB, 0.45)}));
    return w;
}

std::vector<WorkloadProfile>
cloudWorkloads()
{
    std::vector<WorkloadProfile> w;
    const std::string s = "cloudsuite";
    // Server workloads: multi-megabyte code footprints, skewed data
    // reuse over large heaps, little spatial locality.
    {
        auto prof = profile("cassandra", s, 0.33, 0.20, 0.06,
                            2 * kMB,
                            {hotcold(32 * kMB, 0.9, 0.5, 0.15),
                             chase(8 * kMB, 0.25),
                             stream(16 * kMB, 0.25)});
        prof.local_frac = 0.87;
        w.push_back(prof);
    }
    {
        auto prof = profile("classification", s, 0.36, 0.16, 0.04,
                            1 * kMB,
                            {stream(48 * kMB, 0.25, 0.1),
                             hotcold(16 * kMB, 1.1, 0.55),
                             loop(128 * kKB, 0.2)});
        prof.local_frac = 0.85;
        w.push_back(prof);
    }
    w.push_back(profile("cloud9", s, 0.30, 0.22, 0.08, 3 * kMB,
                        {chase(12 * kMB, 0.4),
                         hotcold(8 * kMB, 1.0, 0.4),
                         stream(8 * kMB, 0.2)}));
    {
        auto prof = profile("nutch", s, 0.32, 0.20, 0.06, 2 * kMB,
                            {hotcold(24 * kMB, 0.7, 0.55, 0.1),
                             scanthrash(5 * kMB, 0.25, 40960,
                                        16384),
                             loop(128 * kKB, 0.2)});
        prof.local_frac = 0.84;
        w.push_back(prof);
    }
    {
        auto prof = profile("streaming", s, 0.38, 0.14, 0.03,
                            1 * kMB,
                            {stream(64 * kMB, 0.85, 0.1),
                             hotcold(1 * kMB, 1.0, 0.15)});
        prof.local_frac = 0.85;
        w.push_back(prof);
    }
    return w;
}

std::vector<WorkloadProfile>
allWorkloads()
{
    auto all = specWorkloads();
    const auto cloud = cloudWorkloads();
    all.insert(all.end(), cloud.begin(), cloud.end());
    return all;
}

std::vector<WorkloadProfile>
trainingWorkloads()
{
    static const char *const names[] = {
        "459.GemsFDTD", "403.gcc",      "429.mcf",
        "450.soplex",   "470.lbm",      "437.leslie3d",
        "471.omnetpp",  "483.xalancbmk",
    };
    std::vector<WorkloadProfile> out;
    for (const auto *name : names)
        out.push_back(findWorkload(name));
    return out;
}

WorkloadProfile
findWorkload(const std::string &name)
{
    for (auto &p : allWorkloads()) {
        if (p.name == name)
            return p;
    }
    util::fatal("unknown workload '{}'", name);
}

std::unique_ptr<SyntheticGenerator>
makeGenerator(const std::string &name, uint64_t seed)
{
    return std::make_unique<SyntheticGenerator>(findWorkload(name),
                                                seed);
}

} // namespace rlr::trace
