/**
 * @file
 * Google-benchmark microbenchmarks: per-access software cost of
 * each replacement policy (victim selection + state update). Not
 * a paper figure — it documents the simulation-speed tradeoffs of
 * the policies in this library.
 */

#include <benchmark/benchmark.h>

#include "core/policy_factory.hh"
#include "util/rng.hh"

using namespace rlr;

namespace
{

void
policyBench(benchmark::State &state, const std::string &name)
{
    cache::CacheGeometry geom;
    geom.name = "LLC";
    geom.size_bytes = 2 * 1024 * 1024;
    geom.ways = 16;
    auto policy = core::makePolicy(name, 1);
    policy->bind(geom);

    util::Rng rng(7);
    std::vector<cache::BlockView> blocks(geom.ways);
    for (uint32_t w = 0; w < geom.ways; ++w) {
        blocks[w] = cache::BlockView{true, false, false,
                                     (w + 1) * 64ull};
    }

    for (auto _ : state) {
        cache::AccessContext ctx;
        ctx.set = static_cast<uint32_t>(
            rng.nextBounded(geom.numSets()));
        ctx.full_addr = rng.next() & ~0x3fULL;
        ctx.pc = 0x400000 + 4 * rng.nextBounded(64);
        ctx.type = trace::AccessType::Load;
        ctx.hit = false;
        const uint32_t way = policy->findVictim(ctx, blocks);
        ctx.way = way == cache::ReplacementPolicy::kBypass
                      ? 0
                      : way % geom.ways;
        policy->onAccess(ctx);
        benchmark::DoNotOptimize(way);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()));
}

} // namespace

BENCHMARK_CAPTURE(policyBench, LRU, std::string("LRU"));
BENCHMARK_CAPTURE(policyBench, DRRIP, std::string("DRRIP"));
BENCHMARK_CAPTURE(policyBench, SHiP, std::string("SHiP"));
BENCHMARK_CAPTURE(policyBench, SHiPpp, std::string("SHiP++"));
BENCHMARK_CAPTURE(policyBench, Hawkeye, std::string("Hawkeye"));
BENCHMARK_CAPTURE(policyBench, KPC_R, std::string("KPC-R"));
BENCHMARK_CAPTURE(policyBench, EVA, std::string("EVA"));
BENCHMARK_CAPTURE(policyBench, PDP, std::string("PDP"));
BENCHMARK_CAPTURE(policyBench, RLR, std::string("RLR"));
BENCHMARK_CAPTURE(policyBench, RLR_unopt,
                  std::string("RLR-unopt"));

BENCHMARK_MAIN();
