/**
 * @file
 * Minimal std::format work-alike (the toolchain's libstdc++ ships
 * no <format>). Supports the subset used in this codebase:
 *
 *   {}            default formatting
 *   {:<W} {:>W}   explicit alignment with width W
 *   {:W}          width (right-aligned numbers, left-aligned text)
 *   {:.Pf}        fixed precision for floating point
 *   {:x}          hexadecimal integers
 *   {:<{}} {:.{}f} dynamic width/precision taken from the args
 *   {{ }}         brace escapes
 */

#ifndef RLR_UTIL_FORMAT_HH
#define RLR_UTIL_FORMAT_HH

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>

namespace rlr::util
{

/** Type-erased format argument. */
class FmtArg
{
  public:
    enum class Kind { Int, Uint, Float, Str, Bool, Char };

    FmtArg(bool v) : kind_(Kind::Bool), u_(v) {}
    FmtArg(char v) : kind_(Kind::Char), u_(static_cast<uint8_t>(v)) {}
    FmtArg(double v) : kind_(Kind::Float), f_(v) {}
    FmtArg(float v) : kind_(Kind::Float), f_(v) {}
    FmtArg(const char *v) : kind_(Kind::Str), s_(v) {}
    FmtArg(std::string_view v) : kind_(Kind::Str), s_(v) {}
    FmtArg(const std::string &v) : kind_(Kind::Str), s_(v) {}

    template <typename T>
        requires(std::is_integral_v<T> && !std::is_same_v<T, bool> &&
                 !std::is_same_v<T, char>)
    FmtArg(T v)
        : kind_(std::is_signed_v<T> ? Kind::Int : Kind::Uint)
    {
        if constexpr (std::is_signed_v<T>)
            i_ = v;
        else
            u_ = v;
    }

    Kind kind() const { return kind_; }
    int64_t asInt() const;
    uint64_t asUint() const { return u_; }
    double asFloat() const { return f_; }
    std::string_view asStr() const { return s_; }

  private:
    Kind kind_;
    int64_t i_ = 0;
    uint64_t u_ = 0;
    double f_ = 0.0;
    std::string_view s_;
};

/** Format with a runtime argument list. */
std::string vformat(std::string_view fmt, std::span<const FmtArg> args);

/** Format with inline arguments (std::format-style call shape). */
template <typename... Args>
std::string
format(std::string_view fmt, Args &&...args)
{
    if constexpr (sizeof...(Args) == 0) {
        return vformat(fmt, {});
    } else {
        const FmtArg arr[] = {FmtArg(args)...};
        return vformat(fmt, arr);
    }
}

} // namespace rlr::util

#endif // RLR_UTIL_FORMAT_HH
