/**
 * @file
 * SweepJournal durability tests: atomic file writes, header and
 * cell-record round trips, resume verification (version / master
 * seed / config hash), and corrupt-record recovery (truncated
 * records, swapped records, deliberately corrupted appends).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/journal.hh"
#include "util/atomic_file.hh"

using namespace rlr;
using sim::JournalHeader;
using sim::SweepCell;
using sim::SweepJournal;
using sim::SweepRunner;

namespace fs = std::filesystem;

namespace
{

std::string
tempDir(const char *name)
{
    const std::string dir = ::testing::TempDir() + name;
    fs::remove_all(dir);
    return dir;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

SweepRunner::CellSpec
spec(const std::string &w, const std::string &p)
{
    return SweepRunner::CellSpec{w, p, {w}};
}

/** A fully populated successful cell. */
SweepCell
okCell()
{
    SweepCell cell;
    cell.workload = "429.mcf";
    cell.policy = "RLR";
    cell.seed = 0xdeadbeefcafef00dULL; // above 2^53 on purpose
    cell.attempts = 2;
    cell.retry_wait_s = 0.125;
    cell.start_seconds = 1.5;
    cell.wall_seconds = 2.25;
    cell.mips = 3.75;
    sim::CoreResult core;
    core.workload = "429.mcf";
    core.ipc = 0.7312345678;
    core.instructions = 1'200'000;
    core.cycles = 1'641'000;
    cell.result.cores.push_back(core);
    cell.result.total_instructions = 1'200'000;
    cell.result.llc_demand_accesses = 50'000;
    cell.result.llc_demand_hits = 20'000;
    cell.result.llc_demand_misses = 30'000;
    cell.result.stats.counters = {{"llc.LD_hit", 20'000},
                                  {"llc.LD_miss", 30'000}};
    cell.result.stats.formulas = {{"llc.demand_mpki", 25.0}};
    return cell;
}

JournalHeader
header(uint64_t seed, uint64_t config, uint64_t n)
{
    JournalHeader h;
    h.master_seed = seed;
    h.config_hash = config;
    h.build = "test-build";
    h.n_cells = n;
    return h;
}

} // namespace

TEST(AtomicFile, WritesAndOverwrites)
{
    const std::string path =
        ::testing::TempDir() + "atomic_file_test.txt";
    util::atomicWriteFile(path, "first");
    EXPECT_EQ(slurp(path), "first");
    util::atomicWriteFile(path, "second, longer content");
    EXPECT_EQ(slurp(path), "second, longer content");
    // No temp file left behind next to the target.
    EXPECT_FALSE(fs::exists(path + ".tmp"));
    fs::remove(path);
}

TEST(AtomicFile, FailsCleanlyOnBadPath)
{
    EXPECT_THROW(util::atomicWriteFile(
                     "/nonexistent-dir-xyz/file.txt", "data"),
                 std::runtime_error);
}

// Regression: concurrent writers to the SAME destination (e.g.
// journal records for duplicate sweep cells — fig12 prepends LRU,
// so `--policies LRU,...` schedules the LRU cell twice) used to
// share one pid-keyed temp file; whichever renamed second found
// it already stolen and threw ENOENT. Every writer must succeed
// and the survivor must be one intact payload.
TEST(AtomicFile, ConcurrentWritersToOnePathAllSucceed)
{
    const std::string path =
        ::testing::TempDir() + "atomic_file_race.txt";
    constexpr int kWriters = 8;
    constexpr int kRounds = 50;
    std::atomic<int> failures{0};
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&, w] {
            const std::string payload(64, 'a' + w);
            for (int r = 0; r < kRounds; ++r) {
                try {
                    util::atomicWriteFile(path, payload);
                } catch (const std::exception &) {
                    ++failures;
                }
            }
        });
    }
    for (auto &t : writers)
        t.join();
    EXPECT_EQ(failures.load(), 0);
    const std::string final = slurp(path);
    ASSERT_EQ(final.size(), 64u);
    EXPECT_EQ(final, std::string(64, final[0]));
    fs::remove(path);
}

TEST(Journal, HeaderRoundTrip)
{
    JournalHeader h = header(0xdeadbeefcafef00dULL,
                             0x0123456789abcdefULL, 12);
    const auto parsed =
        SweepJournal::headerFromJson(SweepJournal::headerToJson(h));
    EXPECT_EQ(parsed.version, h.version);
    EXPECT_EQ(parsed.master_seed, h.master_seed);
    EXPECT_EQ(parsed.config_hash, h.config_hash);
    EXPECT_EQ(parsed.build, h.build);
    EXPECT_EQ(parsed.n_cells, h.n_cells);
}

TEST(Journal, CellRoundTripOk)
{
    const SweepCell cell = okCell();
    const SweepCell back =
        SweepJournal::cellFromJson(SweepJournal::cellToJson(cell));
    EXPECT_EQ(back.workload, cell.workload);
    EXPECT_EQ(back.policy, cell.policy);
    EXPECT_EQ(back.seed, cell.seed); // exact u64, above 2^53
    EXPECT_EQ(back.attempts, cell.attempts);
    EXPECT_EQ(back.retry_wait_s, cell.retry_wait_s);
    EXPECT_TRUE(back.ok());
    EXPECT_EQ(back.result.total_instructions,
              cell.result.total_instructions);
    EXPECT_EQ(back.result.llc_demand_hits,
              cell.result.llc_demand_hits);
    ASSERT_EQ(back.result.cores.size(), 1u);
    EXPECT_EQ(back.result.cores[0].instructions,
              cell.result.cores[0].instructions);
    EXPECT_EQ(back.result.cores[0].cycles,
              cell.result.cores[0].cycles);
    EXPECT_EQ(back.result.stats.counter("llc.LD_hit"), 20'000u);

    // %.10g doubles re-print stably after a parse round trip —
    // the property byte-identical resume rests on.
    EXPECT_EQ(SweepJournal::cellToJson(back),
              SweepJournal::cellToJson(cell));
}

TEST(Journal, CellRoundTripError)
{
    SweepCell cell;
    cell.workload = "w";
    cell.policy = "p";
    cell.seed = 7;
    cell.error = "timeout: attempt exceeded --cell-timeout 2s";
    cell.timed_out = true;
    cell.attempts = 3;
    const SweepCell back =
        SweepJournal::cellFromJson(SweepJournal::cellToJson(cell));
    EXPECT_FALSE(back.ok());
    EXPECT_EQ(back.error, cell.error);
    EXPECT_TRUE(back.timed_out);
    EXPECT_EQ(back.attempts, 3u);
    EXPECT_TRUE(back.result.cores.empty());
}

TEST(Journal, TruncatedRecordRejected)
{
    std::string body = SweepJournal::cellToJson(okCell());
    body.resize(body.size() / 2);
    EXPECT_THROW(SweepJournal::cellFromJson(body),
                 std::runtime_error);
}

TEST(Journal, SpecHashDistinguishesCells)
{
    const uint64_t a = SweepJournal::specHash(spec("w", "LRU"), 1);
    EXPECT_EQ(a, SweepJournal::specHash(spec("w", "LRU"), 1));
    EXPECT_NE(a, SweepJournal::specHash(spec("w", "RLR"), 1));
    EXPECT_NE(a, SweepJournal::specHash(spec("x", "LRU"), 1));
    EXPECT_NE(a, SweepJournal::specHash(spec("w", "LRU"), 2));
}

TEST(Journal, AppendThenReopenLoads)
{
    const std::string dir = tempDir("journal_reopen");
    const JournalHeader h = header(42, 1111, 1);
    const SweepCell cell = okCell();
    const uint64_t hash =
        SweepJournal::specHash(spec(cell.workload, cell.policy),
                               cell.seed);
    {
        SweepJournal journal(dir, h);
        EXPECT_EQ(journal.loadedRecords(), 0u);
        journal.append(hash, cell);
    }
    SweepJournal journal(dir, h);
    EXPECT_EQ(journal.loadedRecords(), 1u);
    SweepCell out;
    ASSERT_TRUE(journal.load(
        hash, spec(cell.workload, cell.policy), cell.seed, out));
    EXPECT_EQ(out.result.llc_demand_hits,
              cell.result.llc_demand_hits);
    fs::remove_all(dir);
}

TEST(Journal, MasterSeedMismatchRefuses)
{
    const std::string dir = tempDir("journal_seed_mismatch");
    { SweepJournal journal(dir, header(42, 1111, 1)); }
    try {
        SweepJournal journal(dir, header(43, 1111, 1));
        FAIL() << "expected a master-seed mismatch error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("master seed"),
                  std::string::npos)
            << e.what();
    }
    fs::remove_all(dir);
}

TEST(Journal, ConfigHashMismatchRefuses)
{
    const std::string dir = tempDir("journal_cfg_mismatch");
    { SweepJournal journal(dir, header(42, 1111, 1)); }
    try {
        SweepJournal journal(dir, header(42, 2222, 1));
        FAIL() << "expected a config-hash mismatch error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("config hash"),
                  std::string::npos)
            << e.what();
    }
    fs::remove_all(dir);
}

TEST(Journal, CellCountMismatchRefuses)
{
    const std::string dir = tempDir("journal_count_mismatch");
    { SweepJournal journal(dir, header(42, 1111, 2)); }
    EXPECT_THROW(SweepJournal(dir, header(42, 1111, 3)),
                 std::runtime_error);
    fs::remove_all(dir);
}

TEST(Journal, CorruptHeaderRefusesWithPath)
{
    const std::string dir = tempDir("journal_bad_header");
    { SweepJournal journal(dir, header(42, 1111, 1)); }
    util::atomicWriteFile(dir + "/header.json", "{ not json");
    try {
        SweepJournal journal(dir, header(42, 1111, 1));
        FAIL() << "expected an unreadable-header error";
    } catch (const std::runtime_error &e) {
        // The error names the offending file.
        EXPECT_NE(std::string(e.what()).find("header.json"),
                  std::string::npos)
            << e.what();
    }
    fs::remove_all(dir);
}

// Regression (satellite of the distributed-sweep PR): a journal
// written by a build predating the record-schema member must be
// refused on resume, not silently re-run. The header below is
// hand-written the way schema-1 builds emitted it — no "schema"
// member at all, which headerFromJson interprets as schema 1.
TEST(Journal, OldSchemaHeaderRefusesResume)
{
    const std::string dir = tempDir("journal_old_schema");
    fs::create_directories(dir);
    util::atomicWriteFile(
        dir + "/header.json",
        "{\n"
        "  \"format\": \"rlr-sweep-journal\",\n"
        "  \"version\": 1,\n"
        "  \"master_seed\": \"42\",\n"
        "  \"config_hash\": \"0000000000000457\",\n"
        "  \"build\": \"test-build\",\n"
        "  \"n_cells\": 1\n"
        "}\n");
    try {
        SweepJournal journal(dir, header(42, 1111, 1));
        FAIL() << "expected a schema mismatch error";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("schema 1"), std::string::npos)
            << what;
        EXPECT_NE(what.find("refusing to resume"),
                  std::string::npos)
            << what;
    }
    fs::remove_all(dir);
}

TEST(Journal, HeaderRoundTripKeepsSchemaAndWriter)
{
    JournalHeader h = header(7, 0x457, 3);
    h.writer = "pid 1234 worker 2";
    const auto parsed =
        SweepJournal::headerFromJson(SweepJournal::headerToJson(h));
    EXPECT_EQ(parsed.schema, sim::kJournalSchema);
    EXPECT_EQ(parsed.writer, "pid 1234 worker 2");
}

TEST(Journal, ReapStaleMarkers)
{
    const std::string dir = tempDir("journal_reap");
    const JournalHeader h = header(42, 1111, 3);
    const SweepCell cell = okCell();
    const uint64_t committed_hash = SweepJournal::specHash(
        spec(cell.workload, cell.policy), cell.seed);
    SweepJournal journal(dir, h);
    journal.append(committed_hash, cell);

    // A marker whose cell already has a durable record is reaped
    // regardless of age (append removes its own marker, so write
    // one back by hand)...
    journal.markInFlight(
        committed_hash, spec(cell.workload, cell.policy), 1);
    // ...an old orphan marker is reaped by age...
    journal.markInFlight(0x1111, spec("470.lbm", "LRU"), 1);
    const std::string orphan =
        dir + "/inflight-0000000000001111.json";
    fs::last_write_time(
        orphan, fs::file_time_type::clock::now() -
                    std::chrono::seconds(3600));
    // ...and a fresh marker for a live cell is kept.
    journal.markInFlight(0x2222, spec("429.mcf", "LRU"), 1);

    SweepJournal reopened(dir, h); // loads the committed record
    EXPECT_EQ(reopened.reapStaleMarkers(10.0), 2u);
    EXPECT_FALSE(fs::exists(orphan));
    EXPECT_TRUE(fs::exists(
        dir + "/inflight-0000000000002222.json"));
    fs::remove_all(dir);
}

TEST(Journal, ReloadPicksUpForeignCommit)
{
    const std::string dir = tempDir("journal_reload");
    const JournalHeader h = header(42, 1111, 1);
    const SweepCell cell = okCell();
    const auto cs = spec(cell.workload, cell.policy);
    const uint64_t hash = SweepJournal::specHash(cs, cell.seed);

    SweepJournal mine(dir, h);
    SweepCell out;
    EXPECT_FALSE(mine.reload(hash, cs, cell.seed, out));

    // "Another worker" commits the cell behind our back.
    { SweepJournal other(dir, h); other.append(hash, cell); }
    ASSERT_TRUE(mine.reload(hash, cs, cell.seed, out));
    EXPECT_TRUE(out.ok());
    EXPECT_EQ(out.seed, cell.seed);
    fs::remove_all(dir);
}

TEST(Journal, TruncatedRecordOnDiskIsSkippedNotFatal)
{
    const std::string dir = tempDir("journal_truncated");
    const JournalHeader h = header(42, 1111, 1);
    const SweepCell cell = okCell();
    const uint64_t hash =
        SweepJournal::specHash(spec(cell.workload, cell.policy),
                               cell.seed);
    { SweepJournal(dir, h).append(hash, cell); }
    // Truncate the record in place.
    for (const auto &entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename();
        if (name.rfind("cell-", 0) == 0) {
            const std::string text = slurp(entry.path());
            util::atomicWriteFile(
                entry.path(),
                text.substr(0, text.size() / 2));
        }
    }
    SweepJournal journal(dir, h); // warns, does not throw
    SweepCell out;
    EXPECT_FALSE(journal.load(
        hash, spec(cell.workload, cell.policy), cell.seed, out));
    fs::remove_all(dir);
}

TEST(Journal, CorruptAppendIsUnreadableOnReload)
{
    const std::string dir = tempDir("journal_corrupt_append");
    const JournalHeader h = header(42, 1111, 1);
    const SweepCell cell = okCell();
    const uint64_t hash =
        SweepJournal::specHash(spec(cell.workload, cell.policy),
                               cell.seed);
    { SweepJournal(dir, h).append(hash, cell, /*corrupt=*/true); }
    SweepJournal journal(dir, h);
    SweepCell out;
    EXPECT_FALSE(journal.load(
        hash, spec(cell.workload, cell.policy), cell.seed, out));
    fs::remove_all(dir);
}

TEST(Journal, SwappedRecordDetectedBySpecCheck)
{
    // A record whose content belongs to a different cell (e.g.
    // copied over by hand) must not be served for this spec.
    const std::string dir = tempDir("journal_swapped");
    const JournalHeader h = header(42, 1111, 2);
    SweepCell cell = okCell();
    const uint64_t hash_other =
        SweepJournal::specHash(spec("470.lbm", "LRU"), 999);
    { SweepJournal(dir, h).append(hash_other, cell); }
    SweepJournal journal(dir, h);
    SweepCell out;
    EXPECT_FALSE(
        journal.load(hash_other, spec("470.lbm", "LRU"), 999, out));
    fs::remove_all(dir);
}

TEST(Journal, SummarizeListsRecords)
{
    const std::string dir = tempDir("journal_summary");
    const JournalHeader h = header(42, 1111, 2);
    SweepCell good = okCell();
    SweepCell bad;
    bad.workload = "w2";
    bad.policy = "LRU";
    bad.seed = 5;
    bad.error = "injected fault: throw";
    {
        SweepJournal journal(dir, h);
        journal.append(SweepJournal::specHash(
                           spec(good.workload, good.policy),
                           good.seed),
                       good);
        journal.append(SweepJournal::specHash(
                           spec(bad.workload, bad.policy),
                           bad.seed),
                       bad);
    }
    const std::string summary = SweepJournal::summarize(dir);
    EXPECT_NE(summary.find("master seed 42"), std::string::npos)
        << summary;
    EXPECT_NE(summary.find("429.mcf:RLR"), std::string::npos);
    EXPECT_NE(summary.find("injected fault: throw"),
              std::string::npos);
    EXPECT_NE(summary.find("1 ok, 1 failed"), std::string::npos)
        << summary;
    fs::remove_all(dir);
}

TEST(Journal, ConfigHashCoversParamsAndSpecs)
{
    sim::SimParams a;
    sim::SimParams b = a;
    std::vector<SweepRunner::CellSpec> specs = {spec("w", "LRU")};
    EXPECT_EQ(sim::sweepConfigHash(a, specs),
              sim::sweepConfigHash(b, specs));
    b.sim_instructions += 1;
    EXPECT_NE(sim::sweepConfigHash(a, specs),
              sim::sweepConfigHash(b, specs));
    auto specs2 = specs;
    specs2.push_back(spec("w", "RLR"));
    EXPECT_NE(sim::sweepConfigHash(a, specs),
              sim::sweepConfigHash(a, specs2));
}
