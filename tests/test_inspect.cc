/**
 * @file
 * Tests for the trace-inspection generator (tools/inspect_gen):
 * events-JSON round-trip, malformed-input rejection, the committed
 * golden report, Chrome-trace validation, and cross-validation of
 * the production simulator's victim statistics against the ml
 * offline pipeline (same trace, same policy, same units).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "cache/cache.hh"
#include "ml/offline.hh"
#include "obs/event_log.hh"
#include "obs/events_io.hh"
#include "policies/lru.hh"
#include "tests/policy_test_util.hh"
#include "tools/inspect_gen.hh"
#include "util/rng.hh"

using namespace rlr;
using namespace rlr::tools;

namespace
{

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw std::runtime_error("cannot open " + path);
    std::string text;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return text;
}

/** Fixed-latency backing memory. */
class FlatMemory : public cache::MemoryLevel
{
  public:
    uint64_t
    access(const cache::MemRequest &req, uint64_t now) override
    {
        if (req.type == trace::AccessType::Writeback)
            return now;
        return now + 100;
    }
    const std::string &name() const override { return name_; }

  private:
    std::string name_ = "flat";
};

/** A small log with every event kind for round-trip tests. */
obs::CellEvents
sampleCell()
{
    obs::EventLog log({8, 1});
    log.bind(2, 2);
    log.onMiss(0);
    log.onFill(0, 0, {0x400, 0x1000, trace::AccessType::Load, 1},
               3);
    log.onHit(0, 0, {0x404, 0x1010, trace::AccessType::Rfo, 1}, 2);
    log.onMiss(0);
    log.onFill(0, 1, {0x408, 0x2000, trace::AccessType::Prefetch,
                      0}, 1);
    log.onMiss(0);
    log.onEviction(0, 0, 0x1000,
                   {0x40c, 0x3000, trace::AccessType::Load, 0}, 9);
    log.onFill(0, 0, {0x40c, 0x3000, trace::AccessType::Load, 0},
               0);
    log.onBypass(1, {0x410, 0x4040, trace::AccessType::Load, 0},
                 cache::BypassReason::AgeProtected);

    obs::CellEvents cell;
    cell.workload = "wl \"quoted\"";
    cell.policy = "LRU";
    // Above 2^53: must survive the JSON round-trip exactly.
    cell.seed = 13543642730225124502ull;
    cell.log = log.data();
    return cell;
}

} // namespace

TEST(EventsIo, RoundTripPreservesEverything)
{
    const std::vector<obs::CellEvents> cells = {sampleCell()};
    const std::string json = obs::eventsToJson(cells);
    const auto back = obs::eventsFromJson(json);

    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].workload, cells[0].workload);
    EXPECT_EQ(back[0].policy, cells[0].policy);
    EXPECT_EQ(back[0].seed, cells[0].seed);
    EXPECT_EQ(back[0].log.ways, cells[0].log.ways);
    EXPECT_EQ(back[0].log.recorded, cells[0].log.recorded);
    EXPECT_EQ(back[0].log.set_accesses,
              cells[0].log.set_accesses);
    EXPECT_EQ(back[0].log.set_misses, cells[0].log.set_misses);
    ASSERT_EQ(back[0].log.events.size(),
              cells[0].log.events.size());
    for (size_t i = 0; i < back[0].log.events.size(); ++i)
        EXPECT_EQ(back[0].log.events[i], cells[0].log.events[i])
            << "event " << i;
}

TEST(EventsIo, MalformedInputsThrow)
{
    const std::string good =
        obs::eventsToJson({sampleCell()});

    EXPECT_THROW(obs::eventsFromJson("[]"), std::runtime_error);
    EXPECT_THROW(obs::eventsFromJson("{\"version\": 2}"),
                 std::runtime_error);
    EXPECT_THROW(
        obs::eventsFromJson("{\"version\": 1, \"cells\": 4}"),
        std::runtime_error);

    // Event row with the wrong arity.
    std::string bad = good;
    const size_t open = bad.find("[", bad.find("\"events\""));
    ASSERT_NE(open, std::string::npos);
    bad.replace(bad.find("[", open + 1), 0, "[1, 2], ");
    EXPECT_THROW(obs::eventsFromJson(bad), std::runtime_error);

    // Out-of-range enum value (kind column).
    std::string bad_kind = good;
    const size_t row = bad_kind.find("[", open + 1);
    const size_t comma = bad_kind.find(",", row);
    bad_kind.replace(comma + 1, bad_kind.find(",", comma + 1) -
                                    comma - 1,
                     " 9");
    EXPECT_THROW(obs::eventsFromJson(bad_kind),
                 std::runtime_error);

    // Non-integer seed string.
    std::string bad_seed = good;
    const size_t seed_pos = bad_seed.find("\"seed\": \"");
    ASSERT_NE(seed_pos, std::string::npos);
    bad_seed.replace(seed_pos + 9, 4, "zzzz");
    EXPECT_THROW(obs::eventsFromJson(bad_seed),
                 std::runtime_error);
}

TEST(Inspect, GoldenReportMatches)
{
    const std::string fixture =
        readFile(std::string(RLR_TEST_DATA_DIR) +
                 "/events_fixture.json");
    InspectOptions opts;
    opts.title = "Golden trace inspection";
    opts.source = "events_fixture.json";
    const std::string report = generateInspect(fixture, opts);
    const std::string golden =
        readFile(std::string(RLR_TEST_DATA_DIR) +
                 "/inspect_golden.md");
    EXPECT_EQ(report, golden)
        << "inspect output drifted from tests/data/"
           "inspect_golden.md; run scripts/update_golden.sh";
}

TEST(Inspect, DeterministicAndStructured)
{
    const std::vector<obs::CellEvents> cells = {sampleCell()};
    InspectOptions opts;
    opts.source = "unit";
    const std::string a = generateInspect(cells, opts);
    const std::string b = generateInspect(cells, opts);
    EXPECT_EQ(a, b);

    // The single eviction and the bypass both render.
    EXPECT_NE(a.find("### Decision mix"), std::string::npos);
    EXPECT_NE(a.find("### Bypass reasons"), std::string::npos);
    EXPECT_NE(a.find("age_protected"), std::string::npos);
    EXPECT_NE(a.find("### Victim age by last access type"),
              std::string::npos);
    EXPECT_NE(a.find("### Victim hit counts"), std::string::npos);
    EXPECT_NE(a.find("### Victim recency"), std::string::npos);
    EXPECT_NE(a.find("wl \"quoted\" / LRU"), std::string::npos);
}

TEST(Inspect, VictimStatsAggregation)
{
    const obs::CellEvents cell = sampleCell();
    const VictimStats vs = victimStats(cell.log);
    EXPECT_EQ(vs.evictions, 1u);
    // The victim (line 0x1000) was hit once before eviction.
    EXPECT_EQ(vs.victims_one_hit, 1u);
    EXPECT_EQ(vs.victims_zero_hits, 0u);
    // Last touched by the RFO hit at set-access 2, evicted at 4.
    const auto rfo = static_cast<size_t>(trace::AccessType::Rfo);
    EXPECT_EQ(vs.victim_count[rfo], 1u);
    EXPECT_EQ(vs.victim_age_sum[rfo], 2u);
    EXPECT_DOUBLE_EQ(vs.avgVictimAge(trace::AccessType::Rfo), 2.0);
    ASSERT_EQ(vs.victim_recency.size(), 2u);
    EXPECT_EQ(vs.victim_recency[0], 1u); // LRU victim
}

TEST(Inspect, CheckChromeTraceRejectsBadDocuments)
{
    EXPECT_THROW(checkChromeTrace("[]"), std::runtime_error);
    EXPECT_THROW(checkChromeTrace("{}"), std::runtime_error);
    EXPECT_THROW(checkChromeTrace(
                     "{\"traceEvents\": [{\"name\": \"x\"}]}"),
                 std::runtime_error);
    // An "X" event without ts/dur.
    EXPECT_THROW(
        checkChromeTrace("{\"traceEvents\": [{\"name\": \"x\", "
                         "\"ph\": \"X\", \"pid\": 1, "
                         "\"tid\": 0}]}"),
        std::runtime_error);
    // Minimal valid documents pass.
    EXPECT_EQ(checkChromeTrace("{\"traceEvents\": []}"), 0u);
    EXPECT_EQ(
        checkChromeTrace("{\"traceEvents\": [{\"name\": \"x\", "
                         "\"ph\": \"X\", \"pid\": 1, \"tid\": 0, "
                         "\"ts\": 0, \"dur\": 5}]}"),
        1u);
}

TEST(Inspect, CrossValidationAgainstOfflinePipeline)
{
    // The same load-only trace, the same LRU policy, the same
    // 16-set x 4-way shape: the production Cache + EventLog path
    // must reproduce the ml offline pipeline's Fig-5/6/7 victim
    // statistics (both count victim age in set accesses and rank
    // recency with 0 = LRU).
    util::Rng rng(123);
    std::vector<uint64_t> lines;
    for (int i = 0; i < 3000; ++i)
        lines.push_back(rng.nextBounded(192));
    const trace::LlcTrace llc_trace = test::loadTrace(lines);

    // Offline pipeline.
    ml::OfflineSimulator sim(test::smallOffline(), &llc_trace);
    policies::LruPolicy offline_lru;
    const auto offline = sim.runPolicy(offline_lru);
    ASSERT_GT(offline.evictions, 0u);
    const ml::FeatureStats &fs = sim.featureStats();

    // Production cache with an attached event log, replaying the
    // identical stream (accesses spaced so no MSHR merges skew
    // the hit/miss sequence).
    cache::CacheGeometry geom;
    geom.name = "LLC";
    geom.size_bytes = test::smallOffline().size_bytes;
    geom.ways = test::smallOffline().ways;
    geom.latency = 10;
    geom.mshrs = 8;
    FlatMemory mem;
    cache::Cache c(geom, std::make_unique<policies::LruPolicy>(),
                   &mem);
    obs::EventLog log({1 << 16, 1});
    c.setEventLog(&log);
    uint64_t now = 0;
    for (size_t i = 0; i < llc_trace.size(); ++i) {
        cache::MemRequest req;
        req.address = llc_trace[i].address;
        req.pc = llc_trace[i].pc;
        req.type = llc_trace[i].type;
        c.access(req, now);
        now += 10000;
    }

    const VictimStats vs = victimStats(log.data());

    // Eviction decisions line up one-for-one.
    EXPECT_EQ(vs.evictions, offline.evictions);
    EXPECT_EQ(vs.victims_zero_hits, fs.victims_zero_hits);
    EXPECT_EQ(vs.victims_one_hit, fs.victims_one_hit);
    EXPECT_EQ(vs.victims_multi_hits, fs.victims_multi_hits);
    for (size_t t = 0; t < trace::kNumAccessTypes; ++t) {
        EXPECT_EQ(vs.victim_count[t], fs.victim_count[t])
            << "type " << t;
    }
    ASSERT_EQ(vs.victim_recency.size(), fs.victim_recency.size());
    for (size_t r = 0; r < vs.victim_recency.size(); ++r) {
        EXPECT_EQ(vs.victim_recency[r], fs.victim_recency[r])
            << "recency " << r;
    }
    // Ages use the same units; allow a +-1-access-per-victim
    // tolerance on the aggregate in case of boundary-counting
    // differences between the two pipelines.
    for (size_t t = 0; t < trace::kNumAccessTypes; ++t) {
        const double a = static_cast<double>(vs.victim_age_sum[t]);
        const double b = static_cast<double>(fs.victim_age_sum[t]);
        EXPECT_NEAR(a, b,
                    static_cast<double>(vs.victim_count[t]))
            << "type " << t;
    }
}
