/**
 * @file
 * Tests for the LLC's compile-time policy dispatch: the typed
 * (devirtualized) hot path must be byte-identical in behaviour to
 * the virtual-dispatch fallback across the whole policy zoo, the
 * dispatch-kind detection must pick the right instantiation (and
 * refuse lookalike subclasses), and flush-periodic differential
 * replays must hold against the independent reference models.
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "core/policy_factory.hh"
#include "policies/rrip.hh"
#include "policies/ship.hh"
#include "verify/differential.hh"

using namespace rlr;

namespace
{

/** Equivalence spec sized so DRRIP's 32 leader sets fit. */
verify::DiffSpec
zooSpec(const std::string &policy, uint64_t seed)
{
    verify::DiffSpec spec;
    spec.policy = policy;
    spec.sets = 64;
    spec.ways = 8;
    spec.seed = seed;
    spec.accesses = 1500;
    spec.distinct_lines = 64 * 8 * 2;
    return spec;
}

} // namespace

/**
 * The central tentpole oracle: for every factory policy, a typed
 * cache and a forced-virtual cache replaying the same fuzz trace
 * must agree on per-access completion times, per-set contents
 * after every access, and the full final counter set.
 */
TEST(Dispatch, TypedAndVirtualPathsAreEquivalent)
{
    for (const auto &policy : core::knownPolicies()) {
        const std::string err = verify::dispatchEquivalenceError(
            zooSpec(policy, 11));
        EXPECT_EQ(err, "") << "policy " << policy;
    }
}

/** Same oracle with periodic flushes (policy reset parity). */
TEST(Dispatch, EquivalenceHoldsAcrossFlushes)
{
    for (const auto &policy : core::knownPolicies()) {
        auto spec = zooSpec(policy, 23);
        spec.flush_period = 311;
        const std::string err =
            verify::dispatchEquivalenceError(spec);
        EXPECT_EQ(err, "") << "policy " << policy;
    }
}

/**
 * Flush-then-access differential against the independent
 * reference models: periodic Cache::flush / RefCache::flush pairs
 * must keep production and reference in lockstep, which pins down
 * ReplacementPolicy::reset() for every reference-modeled policy
 * (including RNG re-seeding in BRRIP/DRRIP).
 */
TEST(Dispatch, FlushDifferentialAgainstReferenceModels)
{
    for (const auto &policy : verify::referencePolicies()) {
        verify::DiffSpec spec;
        spec.policy = policy;
        spec.sets = 8;
        spec.ways = 4;
        spec.seed = 5;
        spec.accesses = 2000;
        spec.distinct_lines = 96;
        spec.flush_period = 237;
        const auto result = verify::runDifferential(spec);
        EXPECT_TRUE(result.ok)
            << "policy " << policy << "\n"
            << result.repro;
    }
}

TEST(Dispatch, KindDetectionMatchesPolicy)
{
    const std::vector<std::pair<std::string, std::string>> cases = {
        {"LRU", "LRU"},         {"SRRIP", "SRRIP"},
        {"BRRIP", "BRRIP"},     {"DRRIP", "DRRIP"},
        {"SHiP", "SHiP"},       {"RLR", "RLR"},
        {"RLR-unopt", "RLR"},   {"RLR-bypass", "RLR"},
        // Derived/exotic policies must take the virtual fallback:
        // a devirtualized base-class call would skip their
        // overrides.
        {"SHiP++", "generic"},  {"Hawkeye", "generic"},
        {"Glider", "generic"},  {"MPPPB", "generic"},
        {"KPC-R", "generic"},   {"EVA", "generic"},
        {"PDP", "generic"},     {"Random", "generic"},
    };
    cache::CacheGeometry geom;
    geom.name = "L";
    geom.size_bytes = 64 * 1024;
    geom.ways = 8;
    for (const auto &[policy, kind] : cases) {
        class Sink : public cache::MemoryLevel
        {
          public:
            uint64_t
            access(const cache::MemRequest &,
                   uint64_t now) override
            {
                return now;
            }
            const std::string &
            name() const override
            {
                static const std::string n = "sink";
                return n;
            }
        } sink;
        cache::Cache c(geom, core::makePolicy(policy, 1), &sink);
        EXPECT_STREQ(c.dispatchKind(), kind.c_str())
            << "policy " << policy;
        c.setForceGenericDispatch(true);
        EXPECT_STREQ(c.dispatchKind(), "generic")
            << "policy " << policy;
        c.setForceGenericDispatch(false);
        EXPECT_STREQ(c.dispatchKind(), kind.c_str())
            << "policy " << policy;
    }
}

/**
 * A subclass of a devirtualized policy type must NOT match its
 * base's typed instantiation, even when it overrides nothing the
 * hot path calls — exact-type detection, not is-a.
 */
TEST(Dispatch, SubclassFallsBackToGeneric)
{
    class TweakedSrrip : public policies::SrripPolicy
    {
      public:
        using policies::SrripPolicy::SrripPolicy;
    };
    class Sink : public cache::MemoryLevel
    {
      public:
        uint64_t
        access(const cache::MemRequest &, uint64_t now) override
        {
            return now;
        }
        const std::string &
        name() const override
        {
            static const std::string n = "sink";
            return n;
        }
    } sink;
    cache::CacheGeometry geom;
    geom.name = "L";
    geom.size_bytes = 16 * 1024;
    geom.ways = 4;
    cache::Cache c(geom, std::make_unique<TweakedSrrip>(2), &sink);
    EXPECT_STREQ(c.dispatchKind(), "generic");
}
