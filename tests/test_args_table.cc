/** @file Unit tests for util/args.hh and util/table.hh. */

#include <gtest/gtest.h>

#include "util/args.hh"
#include "util/table.hh"

using namespace rlr::util;

namespace
{

bool
parse(ArgParser &p, std::vector<const char *> argv)
{
    argv.insert(argv.begin(), "prog");
    return p.parse(static_cast<int>(argv.size()), argv.data());
}

} // namespace

TEST(Args, Defaults)
{
    ArgParser p("test");
    p.addOption("count", "5", "a count");
    ASSERT_TRUE(parse(p, {}));
    EXPECT_EQ(p.getInt("count"), 5);
}

TEST(Args, SpaceSeparatedValue)
{
    ArgParser p("test");
    p.addOption("count", "5", "a count");
    ASSERT_TRUE(parse(p, {"--count", "9"}));
    EXPECT_EQ(p.getInt("count"), 9);
}

TEST(Args, EqualsValue)
{
    ArgParser p("test");
    p.addOption("name", "x", "a name");
    ASSERT_TRUE(parse(p, {"--name=zeus"}));
    EXPECT_EQ(p.get("name"), "zeus");
}

TEST(Args, Flags)
{
    ArgParser p("test");
    p.addFlag("fast", "go fast");
    ASSERT_TRUE(parse(p, {"--fast"}));
    EXPECT_TRUE(p.getFlag("fast"));

    ArgParser q("test");
    q.addFlag("fast", "go fast");
    ASSERT_TRUE(parse(q, {}));
    EXPECT_FALSE(q.getFlag("fast"));
}

TEST(Args, NumericParsing)
{
    ArgParser p("test");
    p.addOption("u", "0", "");
    p.addOption("d", "0", "");
    ASSERT_TRUE(parse(p, {"--u", "12345678901", "--d", "2.5"}));
    EXPECT_EQ(p.getUint("u"), 12345678901ULL);
    EXPECT_DOUBLE_EQ(p.getDouble("d"), 2.5);
}

TEST(Args, ListSplitting)
{
    ArgParser p("test");
    p.addOption("items", "", "");
    ASSERT_TRUE(parse(p, {"--items", "a,b,c"}));
    const auto items = p.getList("items");
    ASSERT_EQ(items.size(), 3u);
    EXPECT_EQ(items[0], "a");
    EXPECT_EQ(items[2], "c");
}

TEST(Args, EmptyListIsEmpty)
{
    ArgParser p("test");
    p.addOption("items", "", "");
    ASSERT_TRUE(parse(p, {}));
    EXPECT_TRUE(p.getList("items").empty());
}

TEST(Args, HelpReturnsFalse)
{
    ArgParser p("test");
    ::testing::internal::CaptureStdout();
    const bool cont = parse(p, {"--help"});
    ::testing::internal::GetCapturedStdout();
    EXPECT_FALSE(cont);
}

TEST(Args, UsageMentionsOptions)
{
    ArgParser p("my tool");
    p.addOption("alpha", "1", "the alpha knob");
    const std::string usage = p.usage();
    EXPECT_NE(usage.find("alpha"), std::string::npos);
    EXPECT_NE(usage.find("the alpha knob"), std::string::npos);
    EXPECT_NE(usage.find("my tool"), std::string::npos);
}

TEST(Table, RenderAligned)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Separator row present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, Csv)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, Formatters)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::pct(0.5, 1), "50.0%");
}

TEST(Table, RowCount)
{
    Table t({"x"});
    EXPECT_EQ(t.numRows(), 0u);
    t.addRow({"1"});
    EXPECT_EQ(t.numRows(), 1u);
}
