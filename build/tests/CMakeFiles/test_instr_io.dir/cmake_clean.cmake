file(REMOVE_RECURSE
  "CMakeFiles/test_instr_io.dir/test_instr_io.cc.o"
  "CMakeFiles/test_instr_io.dir/test_instr_io.cc.o.d"
  "test_instr_io"
  "test_instr_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instr_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
