/**
 * @file
 * Differential policy oracle: replays randomized synthetic LLC
 * traces through the production cache::Cache + replacement policy
 * and the matching reference model (verify/ref_policies.hh) side
 * by side, comparing per-access hit/miss outcomes and resident-set
 * contents (which pins down every victim choice). On divergence
 * the failing trace is shrunk, ddmin-style, to a near-minimal
 * reproducer and rendered as a replayable (config, seed, access
 * list) report.
 *
 * The same module hosts the global fuzz invariants used by
 * tools/fuzz_policies: the brute-force Belady hit-rate upper
 * bound, the RLR_VERIFY-gated policy/stats invariant hooks (armed
 * on the production cache during every differential replay), and
 * the MutantPolicy wrapper whose deliberately corrupted victim
 * selection proves the harness detects real bugs.
 */

#ifndef RLR_VERIFY_DIFFERENTIAL_HH
#define RLR_VERIFY_DIFFERENTIAL_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/replacement.hh"
#include "core/rlr.hh"
#include "trace/record.hh"
#include "verify/ref_cache.hh"

namespace rlr::verify
{

/** One differential cell: cache shape, policy, knobs, trace. */
struct DiffSpec
{
    uint32_t sets = 4;
    uint32_t ways = 4;
    /**
     * Policy under test: LRU, SRRIP, BRRIP, DRRIP, SHiP, or any
     * name starting with "RLR" (knobs taken from `rlr`).
     */
    std::string policy = "LRU";

    /** RRIP-family width (SRRIP/BRRIP/DRRIP/SHiP RRPV bits). */
    unsigned rrpv_bits = 2;
    /** DRRIP leaders per policy (sets must be >= 2x this). */
    uint32_t leader_sets = 2;
    /** SHiP table knobs. */
    unsigned ship_signature_bits = 10;
    unsigned ship_shct_bits = 3;
    /** RLR knobs (policies named RLR*). */
    core::RlrConfig rlr;

    /**
     * Flush both models (Cache::flush / RefCache::flush) every N
     * accesses during the replay; 0 = never. Exercises the
     * policy-reset-on-flush contract differentially.
     */
    uint64_t flush_period = 0;

    /** Trace-generation knobs. */
    uint64_t seed = 1;
    uint64_t accesses = 2000;
    /** Size of the line-address pool the trace draws from. */
    uint32_t distinct_lines = 64;
    double rfo_frac = 0.10;
    double pf_frac = 0.10;
    double wb_frac = 0.10;
    unsigned num_pcs = 8;

    /** One-line replayable description (knobs + seed). */
    std::string describe() const;
};

/** @return true when @p policy has a reference model. */
bool hasReferenceModel(const std::string &policy);

/** Policy names covered by reference models (fuzz default set). */
std::vector<std::string> referencePolicies();

/** Production policy instance for a spec (no factory strings). */
std::unique_ptr<cache::ReplacementPolicy>
makeProductionPolicy(const DiffSpec &spec);

/** Matching reference model for a spec. */
std::unique_ptr<RefPolicy> makeReferencePolicy(const DiffSpec &spec);

/** Deterministic randomized LLC trace for a spec (seeded). */
std::vector<trace::LlcAccess> makeFuzzTrace(const DiffSpec &spec);

/** First divergence between production and reference replay. */
struct Mismatch
{
    /** Trace index of the diverging access. */
    size_t step = 0;
    std::string detail;
};

/** Outcome of one differential run. */
struct DiffResult
{
    bool ok = true;
    DiffSpec spec;
    Mismatch mismatch;
    /** Near-minimal mismatching trace (mismatch runs only). */
    std::vector<trace::LlcAccess> shrunk;
    /** Printable reproducer: config, seed, shrunk access list. */
    std::string repro;
};

/**
 * Deliberately broken policy wrapper for the mutation self-test:
 * delegates to @p inner but rotates every @p period -th victim
 * choice to the next way. A differential harness that cannot
 * catch this has no teeth.
 */
class MutantPolicy : public cache::ReplacementPolicy
{
  public:
    MutantPolicy(std::unique_ptr<cache::ReplacementPolicy> inner,
                 unsigned period);

    void bind(const cache::CacheGeometry &geom) override;
    void reset(const cache::CacheGeometry &geom) override;
    uint32_t
    findVictim(const cache::AccessContext &ctx,
               std::span<const cache::BlockView> blocks) override;
    void onAccess(const cache::AccessContext &ctx) override;
    void onEviction(uint32_t set, uint32_t way,
                    const cache::BlockView &block) override;
    std::string name() const override;
    bool usesPc() const override { return inner_->usesPc(); }
    cache::StorageOverhead overhead() const override;

  private:
    std::unique_ptr<cache::ReplacementPolicy> inner_;
    unsigned period_;
    uint64_t calls_ = 0;
    uint32_t ways_ = 0;
};

/**
 * Replay @p accesses through both models (invariant hooks armed on
 * the production cache).
 * @param mutate_period when > 0, wrap the production policy in a
 *        MutantPolicy with that corruption period (self-test)
 * @return the first mismatch, or nullopt when equivalent
 */
std::optional<Mismatch>
replayCompare(const DiffSpec &spec,
              const std::vector<trace::LlcAccess> &accesses,
              unsigned mutate_period = 0);

/**
 * Shrink a mismatching trace (truncate to the first divergence,
 * then ddmin chunk removal) while the mismatch persists.
 */
std::vector<trace::LlcAccess>
shrinkTrace(const DiffSpec &spec,
            std::vector<trace::LlcAccess> accesses,
            unsigned mutate_period = 0);

/**
 * Full differential pipeline: generate the spec's fuzz trace,
 * compare, and on mismatch shrink + render the reproducer.
 */
DiffResult runDifferential(const DiffSpec &spec,
                           unsigned mutate_period = 0);

/**
 * Dispatch-path oracle: replay the spec's fuzz trace through two
 * production caches built from the same spec — one on the
 * devirtualized compile-time instantiation the policy selects,
 * one forced onto the virtual-dispatch fallback
 * (Cache::setForceGenericDispatch) — and require byte-identical
 * behaviour: per-access completion times, per-set resident
 * contents after every access, and the full final counter sets.
 * @return "" when equivalent, else a description of the first
 *         divergence
 */
std::string dispatchEquivalenceError(const DiffSpec &spec);

/**
 * Optimality invariant: the production policy's hit count on a
 * load-only version of the spec's trace must not exceed
 * brute-force Belady MIN's (bypass-capable, so the bound also
 * covers bypassing policies).
 * @return "" when the bound holds, else a description
 */
std::string beladyBoundError(const DiffSpec &spec);

} // namespace rlr::verify

#endif // RLR_VERIFY_DIFFERENTIAL_HH
