/** @file Tests for replay memory and the DQN agent. */

#include <gtest/gtest.h>

#include "ml/agent.hh"
#include "ml/replay.hh"

using namespace rlr::ml;
using rlr::util::Rng;

TEST(Replay, CapacityWraps)
{
    ReplayMemory mem(4);
    for (uint32_t i = 0; i < 10; ++i)
        mem.push(Transition{{}, i, 0.0f});
    EXPECT_EQ(mem.size(), 4u);
    // Only the newest 4 actions (6..9) remain.
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        const auto &t = mem.sample(rng);
        EXPECT_GE(t.action, 6u);
        EXPECT_LE(t.action, 9u);
    }
}

TEST(Replay, SampleCoversEntries)
{
    ReplayMemory mem(8);
    for (uint32_t i = 0; i < 8; ++i)
        mem.push(Transition{{}, i, 0.0f});
    Rng rng(2);
    std::set<uint32_t> seen;
    for (int i = 0; i < 400; ++i)
        seen.insert(mem.sample(rng).action);
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Agent, GreedyIsArgmax)
{
    AgentConfig cfg;
    cfg.mlp.inputs = 4;
    cfg.mlp.hidden = 4;
    cfg.mlp.outputs = 4;
    cfg.epsilon = 0.0;
    DqnAgent agent(cfg);
    const std::vector<float> state = {0.1f, 0.2f, 0.3f, 0.4f};
    const auto q = agent.network().forward(state);
    const auto best = static_cast<uint32_t>(
        std::max_element(q.begin(), q.end()) - q.begin());
    EXPECT_EQ(agent.actGreedy(state), best);
    EXPECT_EQ(agent.act(state), best);
}

TEST(Agent, EpsilonExplores)
{
    AgentConfig cfg;
    cfg.mlp.inputs = 2;
    cfg.mlp.hidden = 4;
    cfg.mlp.outputs = 8;
    cfg.epsilon = 1.0; // always explore
    DqnAgent agent(cfg);
    const std::vector<float> state = {0.5f, 0.5f};
    std::set<uint32_t> seen;
    for (int i = 0; i < 300; ++i)
        seen.insert(agent.act(state));
    EXPECT_GT(seen.size(), 4u);
}

TEST(Agent, LearnsContextualBandit)
{
    // Two states; the rewarded action differs per state. After
    // training, the greedy policy picks the rewarded action.
    AgentConfig cfg;
    cfg.mlp.inputs = 2;
    cfg.mlp.hidden = 16;
    cfg.mlp.outputs = 2;
    cfg.mlp.learning_rate = 2e-2f;
    cfg.epsilon = 0.3;
    cfg.train_interval = 1;
    cfg.batch_size = 8;
    cfg.seed = 3;
    DqnAgent agent(cfg);

    Rng rng(4);
    for (int i = 0; i < 4000; ++i) {
        const bool which = rng.chance(0.5);
        const std::vector<float> state = {which ? 1.0f : 0.0f,
                                          which ? 0.0f : 1.0f};
        const uint32_t a = agent.act(state);
        const uint32_t best = which ? 0u : 1u;
        const float reward = a == best ? 1.0f : -1.0f;
        agent.observe(Transition{state, a, reward});
    }
    EXPECT_EQ(agent.actGreedy({1.0f, 0.0f}), 0u);
    EXPECT_EQ(agent.actGreedy({0.0f, 1.0f}), 1u);
    EXPECT_GT(agent.decisions(), 0u);
}

TEST(Agent, EpsilonSetterRestores)
{
    AgentConfig cfg;
    cfg.mlp.inputs = 2;
    cfg.mlp.hidden = 2;
    cfg.mlp.outputs = 2;
    DqnAgent agent(cfg);
    agent.setEpsilon(0.0);
    EXPECT_DOUBLE_EQ(agent.epsilon(), 0.0);
    agent.setEpsilon(0.1);
    EXPECT_DOUBLE_EQ(agent.epsilon(), 0.1);
}
