/**
 * @file
 * Executable reference model of the production cache's replacement
 * behaviour (CacheQuery-style trace equivalence checking).
 *
 * RefCache is a tag-only set-associative cache that mirrors the
 * fill/eviction/bypass protocol of cache::Cache exactly — invalid
 * ways fill in way order, the policy chooses victims only for full
 * sets, writeback misses write-allocate, bypass is honoured for
 * non-writeback fills only — but carries no timing, MSHRs,
 * prefetchers, or statistics. Policies plug in through the minimal
 * RefPolicy interface and deliberately share no code with
 * src/policies/: each reference model is a small, independently
 * written re-implementation that the differential harness
 * (verify/differential.hh) replays side by side with the
 * production stack.
 */

#ifndef RLR_VERIFY_REF_CACHE_HH
#define RLR_VERIFY_REF_CACHE_HH

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "trace/record.hh"

namespace rlr::verify
{

/** One access as seen by the reference model. */
struct RefAccess
{
    /** Line-aligned byte address. */
    uint64_t line = 0;
    uint64_t pc = 0;
    trace::AccessType type = trace::AccessType::Load;
    uint8_t cpu = 0;
    /** Trace position (index of this access), for Belady. */
    uint64_t seq = 0;
};

/** Resident-line state exposed to reference policies. */
struct RefLine
{
    bool valid = false;
    uint64_t line = 0;
};

/** Minimal replacement-policy contract of the reference model. */
class RefPolicy
{
  public:
    /** Mirror of ReplacementPolicy::kBypass. */
    static constexpr uint32_t kBypass =
        std::numeric_limits<uint32_t>::max();

    virtual ~RefPolicy() = default;

    /** Size state for a (sets, ways) cache; called once. */
    virtual void reset(uint32_t sets, uint32_t ways) = 0;

    /**
     * Choose a victim way for a fill into a full set, or kBypass.
     * @p lines has one valid entry per way. @p allow_bypass
     * mirrors AccessContext::allow_bypass: false on the re-query
     * after a denied writeback bypass, when kBypass will not be
     * honoured.
     */
    virtual uint32_t victim(const RefAccess &access, uint32_t set,
                            const std::vector<RefLine> &lines,
                            bool allow_bypass) = 0;

    /**
     * Observe a hit or a completed fill at (set, way), mirroring
     * ReplacementPolicy::onAccess.
     */
    virtual void touch(const RefAccess &access, uint32_t set,
                       uint32_t way, bool hit) = 0;

    /** Observe the eviction of a valid line (never for bypasses). */
    virtual void
    evicted(uint32_t set, uint32_t way)
    {
        (void)set;
        (void)way;
    }

    virtual std::string name() const = 0;
};

/** Outcome of one RefCache access. */
struct RefOutcome
{
    bool hit = false;
    /** Way hit or filled; undefined when bypassed. */
    uint32_t way = 0;
    bool bypassed = false;
};

/** Tag-only reference cache driven by a RefPolicy. */
class RefCache
{
  public:
    /**
     * @param sets power-of-two set count
     * @param ways associativity (>= 1)
     * @param policy reference policy (owned)
     */
    RefCache(uint32_t sets, uint32_t ways,
             std::unique_ptr<RefPolicy> policy);

    /** Replay one access; returns its hit/fill outcome. */
    RefOutcome access(const RefAccess &access);

    /**
     * Invalidate every line and reset the policy, mirroring
     * cache::Cache::flush() (flush-then-access differentials).
     */
    void flush();

    /** @return set index of a line-aligned address. */
    uint32_t setIndex(uint64_t line) const;

    /** Resident lines of @p set, indexed by way. */
    const std::vector<RefLine> &setLines(uint32_t set) const;

    uint32_t sets() const { return sets_; }
    uint32_t ways() const { return ways_; }
    RefPolicy &policy() { return *policy_; }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t accesses() const { return hits_ + misses_; }

  private:
    uint32_t sets_;
    uint32_t ways_;
    unsigned set_bits_;
    std::unique_ptr<RefPolicy> policy_;
    /** lines_[set] holds the set's ways. */
    std::vector<std::vector<RefLine>> lines_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

} // namespace rlr::verify

#endif // RLR_VERIFY_REF_CACHE_HH
