#include "util/atomic_file.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "util/format.hh"
#include "util/logging.hh"

namespace rlr::util
{

namespace
{

[[noreturn]] void
ioFail(const std::string &what, const std::string &path)
{
    throw std::runtime_error(format("{} '{}': {}", what, path,
                                    std::strerror(errno)));
}

/** Directory part of @p path ("." when there is none). */
std::string
parentDir(const std::string &path)
{
    const size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

/** fsync the directory so the rename itself is durable. */
void
syncDir(const std::string &dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return; // best effort: some filesystems refuse dir opens
    ::fsync(fd);
    ::close(fd);
}

} // namespace

void
atomicWriteFile(const std::string &path, std::string_view data,
                std::string_view tag)
{
    // The temp name must be unique per *writer*, not just per
    // process: two threads racing on the same destination (e.g.
    // journal records for duplicate sweep cells) would otherwise
    // share one temp file, and whichever renames second finds it
    // already gone. With distinct temps both renames succeed and
    // the last writer wins — atomically, which is the contract.
    // The caller-supplied tag (fencing token in distributed
    // sweeps) additionally separates writer generations that could
    // share a recycled pid.
    static std::atomic<uint64_t> writer_seq{0};
    const std::string tmp = format(
        "{}.tmp.{}{}{}.{}", path, static_cast<long>(::getpid()),
        tag.empty() ? "" : ".", tag,
        writer_seq.fetch_add(1, std::memory_order_relaxed));
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        ioFail("cannot create temp file", tmp);

    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            ::unlink(tmp.c_str());
            ioFail("short write to", tmp);
        }
        off += static_cast<size_t>(n);
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(tmp.c_str());
        ioFail("cannot fsync", tmp);
    }
    if (::close(fd) != 0) {
        ::unlink(tmp.c_str());
        ioFail("cannot close", tmp);
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        ioFail("cannot rename into place", path);
    }
    syncDir(parentDir(path));
}

void
atomicWriteFileOrFatal(const std::string &path,
                       std::string_view data)
{
    try {
        atomicWriteFile(path, data);
    } catch (const std::exception &e) {
        fatal("{}", e.what());
    }
}

} // namespace rlr::util
