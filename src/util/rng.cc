#include "util/rng.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace rlr::util
{

namespace
{

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &w : state_)
        w = splitmix64(s);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    ensure(bound > 0, "Rng::nextBounded: zero bound");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
        const uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    ensure(lo <= hi, "Rng::nextRange: inverted range");
    return lo + static_cast<int64_t>(
        nextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

uint64_t
Rng::nextGeometric(double p)
{
    ensure(p > 0.0 && p <= 1.0, "Rng::nextGeometric: bad p");
    if (p >= 1.0)
        return 0;
    const double u = 1.0 - nextDouble(); // in (0, 1]
    return static_cast<uint64_t>(std::log(u) / std::log1p(-p));
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

ZipfSampler::ZipfSampler(uint64_t n, double alpha)
{
    ensure(n > 0, "ZipfSampler: empty population");
    cdf_.resize(n);
    double acc = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
        cdf_[i] = acc;
    }
    for (auto &c : cdf_)
        c /= acc;
}

uint64_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<uint64_t>(it - cdf_.begin());
}

} // namespace rlr::util
