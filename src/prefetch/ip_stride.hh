/**
 * @file
 * IP-stride prefetcher (the paper's L2 prefetcher): per-PC stride
 * detection with confidence, issuing multi-degree prefetches once
 * a stride is confirmed.
 */

#ifndef RLR_PREFETCH_IP_STRIDE_HH
#define RLR_PREFETCH_IP_STRIDE_HH

#include <vector>

#include "cache/prefetcher.hh"
#include "util/sat_counter.hh"

namespace rlr::prefetch
{

/** Configuration of the IP-stride prefetcher. */
struct IpStrideConfig
{
    /** Tracker table entries (direct-mapped by PC hash). */
    uint32_t table_entries = 256;
    /** Prefetch degree once confidence saturates. */
    uint32_t degree = 2;
    /** Confidence counter bits. */
    unsigned confidence_bits = 2;
};

/** Classic per-IP stride prefetcher. */
class IpStridePrefetcher : public cache::Prefetcher
{
  public:
    explicit IpStridePrefetcher(IpStrideConfig config = {});

    void bind(const cache::CacheGeometry &geom) override;
    void observe(uint64_t pc, uint64_t address, bool hit,
                 std::vector<cache::PrefetchRequest> &out) override;
    std::string name() const override { return "ip-stride"; }

  private:
    struct Entry
    {
        uint64_t pc_tag = 0;
        uint64_t last_line = 0;
        int64_t stride = 0;
        /** Most advanced line already prefetched (stream cursor);
         *  prevents re-issuing overlapping degree windows. */
        int64_t pf_cursor = 0;
        bool cursor_valid = false;
        util::SatCounter confidence;
        bool valid = false;
    };

    IpStrideConfig config_;
    std::vector<Entry> table_;
};

} // namespace rlr::prefetch

#endif // RLR_PREFETCH_IP_STRIDE_HH
