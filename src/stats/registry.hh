/**
 * @file
 * Hierarchical statistics registry — the simulator's unified
 * observability layer.
 *
 * Components register named statistics under dotted paths
 * ("llc.LD_hit", "core0.ipc", "dram.row_hits"):
 *
 *  - **counters** — owned uint64_t cells, bound callbacks pulling
 *    a live value, or a whole StatSet mounted under a prefix;
 *  - **distributions** — util::Histogram, owned or borrowed;
 *  - **formulas** — derived doubles (hit rate, MPKI, IPC, ...)
 *    evaluated lazily against the registry, so every consumer
 *    shares one definition of each metric.
 *
 * A component exposes a `describeStats(Registry&, prefix)` method
 * (see cache::Cache, cpu::O3Core, mem::Dram, sim::System and the
 * ReplacementPolicy / Prefetcher hooks) that mounts its live
 * counters; `snapshot()` then freezes every value into a plain
 * Snapshot for export (stats/export.hh: JSON and text).
 *
 * Registration is strict: re-registering an existing path throws
 * std::invalid_argument, so two components can never silently
 * shadow each other's statistics.
 */

#ifndef RLR_STATS_REGISTRY_HH
#define RLR_STATS_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "stats/stats.hh"
#include "util/histogram.hh"

namespace rlr::stats
{

/** Plain-data form of one histogram (export / round-trip). */
struct HistogramData
{
    uint64_t bucket_width = 1;
    std::vector<uint64_t> buckets;
    uint64_t overflow = 0;

    uint64_t total() const;

    /** Copy the live histogram's buckets. */
    static HistogramData from(const util::Histogram &h);

    bool operator==(const HistogramData &) const = default;
};

/**
 * A frozen, ordered view of every registered statistic. Plain
 * data: safe to copy across threads, embed in results, and round-
 * trip through JSON (stats/export.hh).
 */
struct Snapshot
{
    /** (path, value) in registration order. */
    std::vector<std::pair<std::string, uint64_t>> counters;
    /** (path, evaluated value) in registration order. */
    std::vector<std::pair<std::string, double>> formulas;
    /** (path, data) in registration order. */
    std::vector<std::pair<std::string, HistogramData>> histograms;

    /** Counter value by path; 0 when absent. */
    uint64_t counter(const std::string &path) const;
    /** Formula value by path; 0.0 when absent. */
    double formula(const std::string &path) const;
    /** Histogram by path; nullptr when absent. */
    const HistogramData *histogram(const std::string &path) const;

    bool empty() const
    {
        return counters.empty() && formulas.empty() &&
               histograms.empty();
    }
};

/** Hierarchical name registry of counters/distributions/formulas. */
class Registry
{
  public:
    /** Pull-style counter source. */
    using CounterFn = std::function<uint64_t()>;
    /** Derived statistic; may read other entries via the registry. */
    using FormulaFn = std::function<double(const Registry &)>;

    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /**
     * Register an owned counter cell.
     * @return stable reference, valid for the registry's lifetime.
     * @throws std::invalid_argument on duplicate path
     */
    uint64_t &counter(const std::string &path,
                      std::string description = "");

    /** Register a counter whose value is pulled from @p fn. */
    void bindCounter(const std::string &path, CounterFn fn,
                     std::string description = "");

    /**
     * Mount every counter of a live StatSet under @p prefix: the
     * set's counter "LD_hit" appears as "<prefix>.LD_hit". The set
     * is borrowed and enumerated lazily at snapshot/lookup time,
     * so counters the component creates later are still exported.
     */
    void bindStatSet(const std::string &prefix, const StatSet *set,
                     std::string description = "");

    /** Register an owned distribution. */
    util::Histogram &distribution(const std::string &path,
                                  size_t nbuckets,
                                  uint64_t bucket_width,
                                  std::string description = "");

    /** Register a borrowed distribution (component-owned). */
    void bindDistribution(const std::string &path,
                          const util::Histogram *hist,
                          std::string description = "");

    /**
     * Register a derived statistic. Formulas are evaluated in
     * registration order at snapshot() time; a formula may read
     * any counter or any formula via value(), including formulas
     * registered after it (evaluation is demand-driven).
     */
    void formula(const std::string &path, FormulaFn fn,
                 std::string description = "");

    /** @return true when @p path names any registered entry. */
    bool has(const std::string &path) const;

    /**
     * Current value of a counter (owned, bound, or inside a
     * mounted StatSet). 0 when absent.
     */
    uint64_t counterValue(const std::string &path) const;

    /**
     * Current value of any scalar entry: formulas evaluate their
     * function, counters convert to double. 0.0 when absent.
     */
    double value(const std::string &path) const;

    /** Description registered for @p path ("" when absent). */
    std::string description(const std::string &path) const;

    /** Paths of every entry, in registration order (mounted
     *  StatSets contribute their current counters). */
    std::vector<std::string> paths() const;

    /** Freeze every value (formulas evaluated now). */
    Snapshot snapshot() const;

  private:
    enum class Kind
    {
        OwnedCounter,
        BoundCounter,
        StatSetMount,
        OwnedDistribution,
        BoundDistribution,
        Formula,
    };

    struct Entry
    {
        std::string path;
        std::string description;
        Kind kind;
        std::unique_ptr<uint64_t> owned_counter;
        CounterFn counter_fn;
        const StatSet *stat_set = nullptr;
        std::unique_ptr<util::Histogram> owned_hist;
        const util::Histogram *bound_hist = nullptr;
        FormulaFn formula_fn;
    };

    Entry &addEntry(const std::string &path, Kind kind,
                    std::string description);
    const Entry *find(const std::string &path) const;
    /** Resolve a path inside a mounted StatSet, if any. */
    const StatSet *findMount(const std::string &path,
                             std::string &leaf) const;

    /** Registration order. */
    std::vector<std::unique_ptr<Entry>> entries_;
    /** Path -> entry, for duplicate rejection and lookup. */
    std::map<std::string, Entry *> index_;
};

} // namespace rlr::stats

#endif // RLR_STATS_REGISTRY_HH
