#include "prefetch/ip_stride.hh"

#include "util/bits.hh"

namespace rlr::prefetch
{

IpStridePrefetcher::IpStridePrefetcher(IpStrideConfig config)
    : config_(config)
{
}

void
IpStridePrefetcher::bind(const cache::CacheGeometry &geom)
{
    (void)geom;
    table_.assign(config_.table_entries, Entry{});
    for (auto &e : table_)
        e.confidence = util::SatCounter(config_.confidence_bits);
}

void
IpStridePrefetcher::observe(uint64_t pc, uint64_t address, bool hit,
                            std::vector<cache::PrefetchRequest> &out)
{
    (void)hit;
    if (pc == 0 || table_.empty())
        return;

    const uint64_t line = address >> cache::kLineBits;
    const size_t idx =
        util::foldXor(pc >> 2, util::ceilLog2(table_.size())) %
        table_.size();
    Entry &e = table_[idx];

    if (!e.valid || e.pc_tag != pc) {
        e.valid = true;
        e.pc_tag = pc;
        e.last_line = line;
        e.stride = 0;
        e.confidence.reset();
        return;
    }

    const int64_t stride = static_cast<int64_t>(line) -
                           static_cast<int64_t>(e.last_line);
    e.last_line = line;
    if (stride == 0)
        return;

    if (stride == e.stride) {
        ++e.confidence;
    } else {
        e.stride = stride;
        e.confidence.reset();
        e.cursor_valid = false;
        return;
    }

    if (!e.confidence.saturated())
        return;

    // Follow the stream: issue only lines beyond the prefetch
    // cursor, so overlapping degree windows never re-request
    // already-prefetched lines.
    for (uint32_t d = 1; d <= config_.degree; ++d) {
        const int64_t target =
            static_cast<int64_t>(line) + stride * static_cast<int64_t>(d);
        if (target <= 0)
            break;
        if (e.cursor_valid &&
            ((stride > 0 && target <= e.pf_cursor) ||
             (stride < 0 && target >= e.pf_cursor)))
            continue;
        e.pf_cursor = target;
        e.cursor_valid = true;
        cache::PrefetchRequest req;
        req.address = static_cast<uint64_t>(target)
                      << cache::kLineBits;
        req.confidence = e.confidence.fraction();
        ++proposals_;
        out.push_back(req);
    }
}

} // namespace rlr::prefetch
