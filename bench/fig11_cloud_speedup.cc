/**
 * @file
 * Regenerates Figure 11: single-core IPC speedup over LRU for the
 * CloudSuite-like benchmarks.
 */

#include "bench/common.hh"
#include "core/policy_factory.hh"

using namespace rlr;

int
main(int argc, char **argv)
{
    auto parser = bench::makeParser(
        "Figure 11: CloudSuite single-core IPC speedup over LRU");
    if (!parser.parse(argc, argv))
        return 0;
    auto opt = bench::makeOptions(parser);

    auto workloads = opt.workloads;
    if (workloads.empty())
        workloads = bench::cloudNames();
    auto policies = opt.policies;
    if (policies.empty())
        policies = core::paperPolicies();

    bench::runSpeedupFigure(
        opt, workloads, policies,
        "Figure 11: CloudSuite speedup over LRU");
    std::puts("\nPaper's overall numbers (1-core CloudSuite): DRRIP "
              "1.80%, KPC-R 3.07%, SHiP 2.64%, RLR 3.48%, "
              "RLR(unopt) 4.02%, Hawkeye 2.09%, SHiP++ 4.60%.");
    return bench::finish(opt);
}
