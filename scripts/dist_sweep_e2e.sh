#!/usr/bin/env bash
# Distributed-sweep equivalence check (wired into ctest as
# `dist_sweep_e2e` and run by both scripts/ci.sh stages).
#
# Proves the lease protocol's kill-tolerant merge end to end on a
# real bench binary (docs/ROBUSTNESS.md, "Distributed sweeps"):
#
#   1. reference : uninterrupted single-process sweep with
#                  --stable-json
#   2. clean     : the same sweep with --workers 2 — two worker
#                  processes claim cells through journal leases,
#                  the supervisor merges, and the export must be
#                  BYTE-IDENTICAL to the reference
#   3. carnage   : 4 workers with `kill-worker%0.4` (workers
#                  SIGKILL themselves on first claim of selected
#                  cells) PLUS an external `kill -9` of whichever
#                  worker the harness catches alive — expired
#                  leases are stolen, dead workers' cells re-run,
#                  exit 0, export still byte-identical
#   4. straggler : 2 workers with `stall-worker@0` — a worker
#                  stops renewing and sleeps past the TTL, its
#                  cell is re-issued, and the straggler's late
#                  commit is fenced off (sweep.fenced_commits)
#
# Usage: scripts/dist_sweep_e2e.sh [--fig12-bin=PATH]
#            [--inspect-bin=PATH]

set -eu

cd "$(dirname "$0")/.." || exit 1

fig12_bin="build/bench/fig12_mpki"
inspect_bin="build/tools/inspect"
for arg in "$@"; do
    case "$arg" in
        --fig12-bin=*) fig12_bin="${arg#--fig12-bin=}" ;;
        --inspect-bin=*) inspect_bin="${arg#--inspect-bin=}" ;;
        *)
            echo "dist_sweep_e2e: unknown argument '$arg'" >&2
            echo "usage: $0 [--fig12-bin=PATH]" \
                 "[--inspect-bin=PATH]" >&2
            exit 2
            ;;
    esac
done

for bin in "$fig12_bin" "$inspect_bin"; do
    [ -x "$bin" ] || {
        echo "dist_sweep_e2e: binary '$bin' not found; build" \
             "first (cmake --build build) or pass --fig12-bin= /" \
             "--inspect-bin=" >&2
        exit 2
    }
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# The same deterministic 4-cell grid as crash_resume_e2e (fig12
# prepends LRU): small enough to finish in seconds, and
# --stable-json zeroes the wall-clock fields so any two complete
# runs export identical bytes regardless of who executed which
# cell.
common="--workloads 429.mcf,470.lbm --policies RLR \
        --warmup 20000 --instructions 30000 --seed 42 \
        --stable-json"

echo "dist_sweep_e2e: [1/4] single-process reference run" >&2
"$fig12_bin" $common --threads 2 --json "$tmp/ref.json" \
    >/dev/null

echo "dist_sweep_e2e: [2/4] clean 2-worker distributed run" >&2
"$fig12_bin" $common --threads 2 --workers 2 \
    --journal "$tmp/clean" --json "$tmp/clean.json" \
    >"$tmp/clean.out" 2>&1
if ! cmp -s "$tmp/ref.json" "$tmp/clean.json"; then
    echo "dist_sweep_e2e: 2-worker merged export differs from" \
         "the single-process run's:" >&2
    diff -u "$tmp/ref.json" "$tmp/clean.json" >&2 || true
    exit 1
fi
[ -f "$tmp/clean/workers.json" ] || {
    echo "dist_sweep_e2e: supervisor did not publish" \
         "workers.json" >&2
    exit 1
}
# The merge pass resumes every worker-committed cell.
grep -q "sweep.resumed_cells 4" "$tmp/clean.out" || {
    echo "dist_sweep_e2e: merge pass did not resume all 4" \
         "worker-committed cells" >&2
    cat "$tmp/clean.out" >&2
    exit 1
}

echo "dist_sweep_e2e: [3/4] 4 workers, kill-worker faults +" \
     "external SIGKILL" >&2
rc=0
"$fig12_bin" $common --threads 2 --workers 4 --lease-ttl 1 \
    --faults 'kill-worker%0.4' --journal "$tmp/kill" \
    --json "$tmp/kill.json" >"$tmp/kill.out" 2>&1 &
supervisor=$!
# As soon as the supervisor publishes the worker pids, SIGKILL
# whichever worker we catch alive — a kill the fault plan never
# sanctioned, exactly what a preempted node looks like.
external_killed=0
for _ in $(seq 1 100); do
    if [ -f "$tmp/kill/workers.json" ]; then
        for pid in $(grep -o '"pid": [0-9]*' \
                         "$tmp/kill/workers.json" |
                     grep -o '[0-9]*'); do
            if kill -9 "$pid" 2>/dev/null; then
                external_killed=1
                break
            fi
        done
        break
    fi
    sleep 0.1
done
wait "$supervisor" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "dist_sweep_e2e: expected the faulted distributed sweep" \
         "to converge with exit 0, got $rc" >&2
    cat "$tmp/kill.out" >&2
    exit 1
fi
if [ "$external_killed" -ne 1 ]; then
    echo "dist_sweep_e2e: never caught a worker alive to SIGKILL" \
         "externally" >&2
    cat "$tmp/kill.out" >&2
    exit 1
fi
if ! cmp -s "$tmp/ref.json" "$tmp/kill.json"; then
    echo "dist_sweep_e2e: kill-tolerant merged export differs" \
         "from the single-process run's:" >&2
    diff -u "$tmp/ref.json" "$tmp/kill.json" >&2 || true
    exit 1
fi
grep -q "killed by signal 9" "$tmp/kill.out" || {
    echo "dist_sweep_e2e: supervisor did not report any" \
         "SIGKILLed worker" >&2
    cat "$tmp/kill.out" >&2
    exit 1
}
grep -Eq "sweep.lease_steals [1-9]" "$tmp/kill.out" || {
    echo "dist_sweep_e2e: no expired lease was stolen — the" \
         "killed workers' cells were never re-issued?" >&2
    cat "$tmp/kill.out" >&2
    exit 1
}
# The journal covers the whole sweep and summarizes cleanly.
"$inspect_bin" --journal "$tmp/kill/sweep-0" >"$tmp/summary.out"
grep -q "4 records: 4 ok, 0 failed, 0 unreadable" \
    "$tmp/summary.out" || {
    echo "dist_sweep_e2e: unexpected journal summary:" >&2
    cat "$tmp/summary.out" >&2
    exit 1
}

echo "dist_sweep_e2e: [4/4] straggler commit is fenced off" >&2
"$fig12_bin" $common --threads 2 --workers 2 --lease-ttl 1 \
    --faults stall-worker@0 --journal "$tmp/stall" \
    --json "$tmp/stall.json" >"$tmp/stall.out" 2>&1
if ! cmp -s "$tmp/ref.json" "$tmp/stall.json"; then
    echo "dist_sweep_e2e: post-stall merged export differs from" \
         "the single-process run's:" >&2
    diff -u "$tmp/ref.json" "$tmp/stall.json" >&2 || true
    exit 1
fi
grep -Eq "sweep.fenced_commits [1-9]" "$tmp/stall.out" || {
    echo "dist_sweep_e2e: the stalled worker's late commit was" \
         "not fenced" >&2
    cat "$tmp/stall.out" >&2
    exit 1
}

echo "dist_sweep_e2e: OK (2-worker, kill-faulted 4-worker with" \
     "external SIGKILL, and fenced-straggler merges all" \
     "byte-identical to the single-process export)"
