/**
 * @file
 * LLC state featurization for the RL agent — the paper's Table II.
 *
 * The 334-float state vector for a 16-way LLC:
 *   access information (11): 6 offset bits, preuse, type one-hot
 *   set information    (3): set number, set accesses,
 *                           set accesses since miss
 *   per-way line info  (16 x 20): 6 offset bits, dirty, preuse,
 *                           age since insertion, age since last
 *                           access, last type one-hot (4),
 *                           LD/RFO/PF/WB counts, hits since
 *                           insertion, recency
 *
 * Features are grouped into the 18 named groups used by the heat
 * map (Fig. 3) and hill-climbing feature selection; groups can be
 * masked to zero for ablation studies.
 */

#ifndef RLR_ML_FEATURES_HH
#define RLR_ML_FEATURES_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.hh"

namespace rlr::ml
{

/** The named feature groups of Table II. */
enum class FeatureGroup : uint8_t
{
    AccessOffset = 0,
    AccessPreuse,
    AccessType,
    SetNumber,
    SetAccesses,
    SetAccessesSinceMiss,
    LineOffset,
    LineDirty,
    LinePreuse,
    LineAgeInsert,
    LineAgeLast,
    LineLastType,
    LineLdCount,
    LineRfoCount,
    LinePfCount,
    LineWbCount,
    LineHits,
    LineRecency,
};

/** Number of feature groups. */
inline constexpr size_t kNumFeatureGroups = 18;

/** @return human-readable group name (heat-map rows). */
std::string_view featureGroupName(FeatureGroup group);

/** Per-line observable state tracked by the offline cache model. */
struct LineFeatures
{
    bool valid = false;
    uint64_t address = 0;
    bool dirty = false;
    /** Set accesses between the last two accesses of the line. */
    uint32_t preuse = 0;
    /** Set accesses since the line was inserted. */
    uint32_t age_insert = 0;
    /** Set accesses since the line was last accessed. */
    uint32_t age_last = 0;
    trace::AccessType last_type = trace::AccessType::Load;
    std::array<uint32_t, trace::kNumAccessTypes> type_counts{};
    uint32_t hits = 0;
    /** Recency rank: 0 = LRU .. ways-1 = MRU. */
    uint32_t recency = 0;
};

/** Per-set observable state. */
struct SetFeatures
{
    uint32_t accesses = 0;
    uint32_t accesses_since_miss = 0;
};

/** Information about the access being served. */
struct AccessFeatures
{
    uint64_t address = 0;
    /** Set accesses since the last access to this address. */
    uint32_t preuse = 0;
    trace::AccessType type = trace::AccessType::Load;
    uint32_t set = 0;
};

/**
 * Builds state vectors from cache/set/access features, honouring
 * an optional per-group mask (hill climbing, ablations).
 */
class FeatureExtractor
{
  public:
    /** @param ways LLC associativity; @param num_sets set count */
    FeatureExtractor(uint32_t ways, uint32_t num_sets);

    /** State vector length (334 for 16 ways). */
    size_t stateSize() const;

    /** Offset of a group's features for way @p way (or access/set
     * scope for the scalar groups). Used by weight analysis. */
    std::vector<size_t> groupIndices(FeatureGroup group) const;

    /** Enable only the listed groups; others read as zero. */
    void setMask(const std::vector<FeatureGroup> &enabled);

    /** Enable every group (default). */
    void clearMask();

    /** @return true when the group is currently enabled. */
    bool enabled(FeatureGroup group) const;

    /** Build the state vector. @p lines has one entry per way. */
    std::vector<float>
    extract(const AccessFeatures &access, const SetFeatures &set,
            const std::vector<LineFeatures> &lines) const;

  private:
    static float normCount(uint32_t v, uint32_t cap);

    uint32_t ways_;
    uint32_t num_sets_;
    std::array<bool, kNumFeatureGroups> mask_{};
};

} // namespace rlr::ml

#endif // RLR_ML_FEATURES_HH
