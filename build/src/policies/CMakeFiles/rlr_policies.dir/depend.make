# Empty dependencies file for rlr_policies.
# This may be replaced when dependencies are built.
