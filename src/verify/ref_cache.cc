#include "verify/ref_cache.hh"

#include "cache/geometry.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace rlr::verify
{

RefCache::RefCache(uint32_t sets, uint32_t ways,
                   std::unique_ptr<RefPolicy> policy)
    : sets_(sets), ways_(ways), policy_(std::move(policy))
{
    util::ensure(util::isPowerOfTwo(sets_),
                 "RefCache: sets must be a power of two");
    util::ensure(ways_ >= 1, "RefCache: zero ways");
    util::ensure(policy_ != nullptr, "RefCache: null policy");
    set_bits_ = util::floorLog2(sets_);
    lines_.assign(sets_, std::vector<RefLine>(ways_));
    policy_->reset(sets_, ways_);
}

uint32_t
RefCache::setIndex(uint64_t line) const
{
    return static_cast<uint32_t>((line >> cache::kLineBits) &
                                 util::mask(set_bits_));
}

const std::vector<RefLine> &
RefCache::setLines(uint32_t set) const
{
    return lines_[set];
}

RefOutcome
RefCache::access(const RefAccess &access)
{
    const uint32_t set = setIndex(access.line);
    std::vector<RefLine> &ways = lines_[set];

    for (uint32_t w = 0; w < ways_; ++w) {
        if (ways[w].valid && ways[w].line == access.line) {
            ++hits_;
            policy_->touch(access, set, w, /*hit=*/true);
            return RefOutcome{true, w, false};
        }
    }

    // Miss: fill. Invalid ways fill in way order without
    // consulting the policy, exactly like cache::Cache::fill().
    ++misses_;
    uint32_t way = ways_;
    for (uint32_t w = 0; w < ways_; ++w) {
        if (!ways[w].valid) {
            way = w;
            break;
        }
    }

    if (way == ways_) {
        way = policy_->victim(access, set, ways,
                              /*allow_bypass=*/true);
        if (way == RefPolicy::kBypass) {
            if (access.type != trace::AccessType::Writeback)
                return RefOutcome{false, 0, true};
            // The policy wanted to bypass a writeback: deny and
            // re-query for a real victim, exactly like the
            // production cache (wb_bypass_denied path).
            way = policy_->victim(access, set, ways,
                                  /*allow_bypass=*/false);
            if (way == RefPolicy::kBypass)
                way = 0; // non-conforming policy: last resort
        }
        util::ensure(way < ways_, "RefCache: bad victim way");
        if (ways[way].valid)
            policy_->evicted(set, way);
    }

    ways[way].valid = true;
    ways[way].line = access.line;
    policy_->touch(access, set, way, /*hit=*/false);
    return RefOutcome{false, way, false};
}

void
RefCache::flush()
{
    lines_.assign(sets_, std::vector<RefLine>(ways_));
    hits_ = 0;
    misses_ = 0;
    policy_->reset(sets_, ways_);
}

} // namespace rlr::verify
