#include "sim/dist_runner.hh"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include <unistd.h>

#include "obs/heartbeat.hh"
#include "util/atomic_file.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace fs = std::filesystem;

namespace rlr::sim
{

namespace
{

bool
readWholeFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool bad = std::ferror(f) != 0;
    std::fclose(f);
    return !bad;
}

} // namespace

DistRunner::DistRunner(Options opts) : opts_(std::move(opts)) {}

std::string
DistRunner::workerHeartbeatPath(const std::string &journal_dir,
                                uint32_t worker_id)
{
    return util::format("{}/worker-{}.heartbeat.json",
                        journal_dir, worker_id);
}

int
DistRunner::exitCode(bool interrupted, bool any_failed)
{
    if (interrupted)
        return 130;
    if (any_failed)
        return 1;
    return 0;
}

std::vector<std::string>
DistRunner::workerArgv(const std::vector<std::string> &argv,
                       uint32_t worker_id)
{
    std::vector<std::string> out;
    out.reserve(argv.size() + 3);
    for (size_t i = 0; i < argv.size(); ++i) {
        const std::string &a = argv[i];
        if (a == "--workers") {
            ++i; // skip the value too
            continue;
        }
        if (a.rfind("--workers=", 0) == 0)
            continue;
        // Workers must not fight over the terminal status line.
        if (a == "--progress")
            continue;
        out.push_back(a);
    }
    out.push_back("--join");
    out.push_back("--worker-id");
    out.push_back(std::to_string(worker_id));
    return out;
}

void
DistRunner::aggregateHeartbeats(uint64_t sequence,
                                bool final) const
{
    if (opts_.heartbeat_path.empty())
        return;
    obs::Heartbeat agg;
    agg.sequence = sequence;
    agg.done = final;
    bool any = false;
    for (uint32_t k = 0; k < opts_.workers; ++k) {
        std::string text;
        if (!readWholeFile(
                workerHeartbeatPath(opts_.journal_dir, k), text)) {
            continue;
        }
        obs::Heartbeat hb;
        try {
            hb = obs::heartbeatFromJson(text);
        } catch (const std::exception &) {
            continue; // mid-write or stale; next poll catches up
        }
        any = true;
        // Every worker counts the SAME sweep: totals agree, and
        // each worker's done count (its own commits + cells it
        // merged from the others) converges to the total — so the
        // aggregate takes the max, never the sum.
        agg.cells_total = std::max(agg.cells_total,
                                   hb.cells_total);
        agg.cells_done = std::max(agg.cells_done, hb.cells_done);
        agg.cells_failed = std::max(agg.cells_failed,
                                    hb.cells_failed);
        agg.cells_resumed = std::max(agg.cells_resumed,
                                     hb.cells_resumed);
        // Liveness, on the other hand, is per worker: sum the
        // in-flight cells and concatenate every worker's rows.
        agg.cells_running += hb.cells_running;
        agg.elapsed_s = std::max(agg.elapsed_s, hb.elapsed_s);
        agg.throughput += hb.throughput;
        agg.eta_s = std::max(agg.eta_s, hb.eta_s);
        agg.rss_kb += hb.rss_kb;
        agg.max_rss_kb += hb.max_rss_kb;
        if (!hb.done)
            agg.done = false;
        for (obs::HeartbeatWorker row : hb.workers) {
            // Re-key thread slots by worker process so rows stay
            // unique in the merged view.
            row.worker = k * 100 + row.worker;
            agg.workers.push_back(std::move(row));
        }
    }
    if (!any && !final)
        return; // nothing to publish yet
    try {
        util::atomicWriteFile(opts_.heartbeat_path,
                              obs::heartbeatToJson(agg));
    } catch (const std::exception &e) {
        util::warn("cannot write supervisor heartbeat '{}': {}",
                   opts_.heartbeat_path, e.what());
    }
}

std::vector<util::ProcExit>
DistRunner::run(const std::vector<std::string> &supervisor_argv)
{
    std::error_code ec;
    fs::create_directories(opts_.journal_dir, ec);
    if (ec) {
        util::fatal("cannot create journal dir '{}': {}",
                    opts_.journal_dir, ec.message());
    }

    std::vector<util::Subprocess> children(opts_.workers);
    for (uint32_t k = 0; k < opts_.workers; ++k) {
        const auto argv = workerArgv(supervisor_argv, k);
        if (!children[k].spawn(argv))
            util::fatal("cannot spawn worker {}", k);
    }

    // Publish the worker pids so external tooling (the e2e
    // harness, operators) can observe or kill them.
    {
        std::string body = "{\n";
        body += "  \"record\": \"rlr-dist-workers\",\n";
        body += util::format("  \"supervisor\": {},\n",
                             static_cast<long>(::getpid()));
        body += "  \"workers\": [";
        for (uint32_t k = 0; k < opts_.workers; ++k) {
            if (k)
                body += ", ";
            body += util::format(
                "{{\"worker\": {}, \"pid\": {}}}", k,
                static_cast<long>(children[k].pid()));
        }
        body += "],\n";
        body += "  \"eor\": 1\n";
        body += "}\n";
        try {
            util::atomicWriteFile(
                opts_.journal_dir + "/workers.json", body);
        } catch (const std::exception &e) {
            util::warn("cannot write workers.json: {}", e.what());
        }
    }

    util::inform("supervising {} sweep workers over journal '{}'",
                 opts_.workers, opts_.journal_dir);

    uint64_t sequence = 0;
    size_t alive = opts_.workers;
    while (alive > 0) {
        alive = 0;
        for (auto &child : children) {
            util::ProcExit status;
            if (!child.poll(status))
                ++alive;
        }
        if (alive == 0)
            break;
        aggregateHeartbeats(++sequence, false);
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::max(opts_.poll_s, 0.01)));
    }
    aggregateHeartbeats(++sequence, true);

    std::vector<util::ProcExit> exits;
    exits.reserve(opts_.workers);
    for (uint32_t k = 0; k < opts_.workers; ++k) {
        const util::ProcExit status = children[k].wait();
        exits.push_back(status);
        if (status.signal != 0) {
            util::warn("worker {} (pid {}) was killed by signal "
                       "{} — its cells will be re-issued",
                       k, static_cast<long>(children[k].pid()),
                       status.signal);
        } else if (status.code != 0) {
            util::warn("worker {} (pid {}) exited with status {}",
                       k, static_cast<long>(children[k].pid()),
                       status.code);
        }
    }
    return exits;
}

} // namespace rlr::sim
