#include "core/rlr.hh"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/bits.hh"
#include "util/format.hh"
#include "util/logging.hh"

namespace rlr::core
{

RlrConfig
RlrConfig::unoptimized()
{
    RlrConfig c;
    c.optimized = false;
    c.age_bits = 5;
    c.age_tick_misses = 1;
    c.hit_bits = 2;
    c.rd_multiplier = 2; // set-access units, as in the paper
    return c;
}

RlrConfig
RlrConfig::forMulticore(unsigned cores)
{
    RlrConfig c;
    c.multicore = true;
    c.num_cores = cores;
    return c;
}

RlrPolicy::RlrPolicy(RlrConfig config) : config_(config)
{
    util::ensure(config_.age_bits >= 1 && config_.age_bits <= 16,
                 "RLR: bad age_bits");
    util::ensure(config_.hit_bits >= 1 && config_.hit_bits <= 16,
                 "RLR: bad hit_bits");
    // overhead() charges a 3-bit per-set miss counter for the
    // optimized variant, so the tick period must fit in it.
    util::ensure(config_.age_tick_misses >= 1 &&
                     config_.age_tick_misses <= 8,
                 "RLR: age_tick_misses must fit the 3-bit per-set "
                 "counter (1..8)");
    util::ensure(util::isPowerOfTwo(config_.rd_update_hits),
                 "RLR: rd_update_hits must be a power of two");
    util::ensure(config_.num_cores >= 1, "RLR: zero cores");
    age_max_ = (1u << config_.age_bits) - 1;
    hit_max_ = (1u << config_.hit_bits) - 1;
}

void
RlrPolicy::bind(const cache::CacheGeometry &geom)
{
    ways_ = geom.ways;
    num_sets_ = geom.numSets();
    lines_.assign(static_cast<size_t>(num_sets_) * ways_,
                  LineState{});
    set_miss_ctr_.assign(num_sets_, 0);
    rd_ = 1;
    preuse_accum_ = 0;
    preuse_samples_ = 0;
    clock_ = 0;
    accesses_ = 0;
    core_demand_hits_.assign(config_.num_cores, 0);
    core_priority_.assign(config_.num_cores, 0);
}

RlrPolicy::LineState &
RlrPolicy::line(uint32_t set, uint32_t way)
{
    return lines_[static_cast<size_t>(set) * ways_ + way];
}

const RlrPolicy::LineState &
RlrPolicy::line(uint32_t set, uint32_t way) const
{
    return lines_[static_cast<size_t>(set) * ways_ + way];
}

void
RlrPolicy::ageSet(uint32_t set, bool miss)
{
    const size_t base = static_cast<size_t>(set) * ways_;
    if (config_.optimized) {
        // Optimized variant: ages advance one tick for every
        // age_tick_misses set *misses*, via a small per-set
        // counter. Hits leave the set unchanged.
        if (!miss)
            return;
        uint8_t &ctr = set_miss_ctr_[set];
        ctr = static_cast<uint8_t>((ctr + 1) %
                                   config_.age_tick_misses);
        if (ctr != 0)
            return;
        for (uint32_t w = 0; w < ways_; ++w) {
            LineState &ls = lines_[base + w];
            if (ls.age < age_max_)
                ++ls.age;
        }
    } else {
        // Unoptimized variant: ages count every set access.
        for (uint32_t w = 0; w < ways_; ++w) {
            LineState &ls = lines_[base + w];
            if (ls.age < age_max_)
                ++ls.age;
        }
    }
}

void
RlrPolicy::samplePreuse(uint32_t preuse)
{
    preuse_accum_ += preuse;
    ++preuse_samples_;
    if (preuse_samples_ < config_.rd_update_hits)
        return;
    // RD = multiplier * average accumulated preuse distance. For
    // the paper's 32 samples and 2x multiplier this is a single
    // right shift by 4 in hardware.
    rd_ = std::max<uint64_t>(
        1, config_.rd_multiplier * preuse_accum_ /
               config_.rd_update_hits);
    preuse_accum_ = 0;
    preuse_samples_ = 0;
}

void
RlrPolicy::updateCorePriorities()
{
    // Rank cores by demand hits; more hits -> higher priority
    // level, so lines from high-hit cores are retained.
    const unsigned n = config_.num_cores;
    std::vector<unsigned> order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](unsigned a, unsigned b) {
                         return core_demand_hits_[a] <
                                core_demand_hits_[b];
                     });
    for (unsigned rank = 0; rank < n; ++rank) {
        core_priority_[order[rank]] =
            std::min(rank, 3u); // levels 0..3
    }
    std::fill(core_demand_hits_.begin(), core_demand_hits_.end(),
              0);
}

uint64_t
RlrPolicy::ageUnits(const LineState &ls) const
{
    // Ages and RD are both kept in set-miss units; the optimized
    // variant's per-line counter ticks once per age_tick_misses
    // misses, so its value is scaled back up for any comparison
    // against RD.
    return config_.optimized
               ? static_cast<uint64_t>(ls.age) *
                     config_.age_tick_misses
               : ls.age;
}

uint64_t
RlrPolicy::linePriority(uint32_t set, uint32_t way) const
{
    const LineState &ls = line(set, way);
    const uint64_t p_age = ageUnits(ls) <= rd_ ? 1 : 0;
    uint64_t p = config_.age_weight * p_age;
    if (config_.use_type_priority && !ls.last_was_prefetch)
        p += 1;
    if (config_.use_hit_priority)
        p += std::min<uint32_t>(ls.hits, hit_max_);
    if (config_.multicore)
        p += core_priority_[ls.cpu % config_.num_cores];
    return p;
}

uint32_t
RlrPolicy::findVictim(const cache::AccessContext &ctx,
                      std::span<const cache::BlockView> blocks)
{
    (void)blocks;
    const uint32_t set = ctx.set;

    if (config_.allow_bypass && ctx.allow_bypass &&
        ctx.type != trace::AccessType::Writeback) {
        // Bypass when no line has outlived the predicted reuse
        // distance: every resident line may still be reused. The
        // comparison must use scaled ages: raw optimized ages top
        // out at age_max_ (3), so comparing them against an RD in
        // set-miss units would bypass nearly every fill once
        // RD > age_max_.
        bool any_expired = false;
        for (uint32_t w = 0; w < ways_; ++w) {
            if (ageUnits(line(set, w)) > rd_) {
                any_expired = true;
                break;
            }
        }
        if (!any_expired)
            return kBypass;
    }

    uint32_t victim = 0;
    uint64_t best_priority = ~0ULL;
    for (uint32_t w = 0; w < ways_; ++w) {
        const LineState &ls = line(set, w);
        const uint64_t p = linePriority(set, w);
        if (p < best_priority) {
            best_priority = p;
            victim = w;
            continue;
        }
        if (p != best_priority)
            continue;
        // Tie-break: evict the most recently used line, giving
        // older lines time to reach their predicted reuse.
        const LineState &cur = line(set, victim);
        if (config_.optimized) {
            // Recency approximated by the age counter: smaller
            // age = more recent. Final tie: lowest way index
            // (w > victim keeps the earlier way).
            if (ls.age < cur.age)
                victim = w;
        } else {
            if (ls.last_use > cur.last_use)
                victim = w;
        }
    }
    return victim;
}

void
RlrPolicy::onAccess(const cache::AccessContext &ctx)
{
    ++accesses_;

    if (config_.multicore) {
        if (ctx.hit && trace::isDemand(ctx.type))
            ++core_demand_hits_[ctx.cpu % config_.num_cores];
        if (accesses_ % config_.core_update_interval == 0)
            updateCorePriorities();
    }

    // Age the set before handling the touched line, so the line's
    // pre-access age is its preuse distance.
    ageSet(ctx.set, !ctx.hit);

    LineState &ls = line(ctx.set, ctx.way);

    if (ctx.hit) {
        if (trace::isDemand(ctx.type)) {
            // The age counter value at a demand hit is the line's
            // preuse distance; feed the RD predictor. In the
            // optimized variant the per-set miss counter supplies
            // the low-order bits at no extra per-line cost.
            const uint32_t sample =
                config_.optimized
                    ? ls.age * config_.age_tick_misses +
                          set_miss_ctr_[ctx.set]
                    : ls.age;
            samplePreuse(sample);
            if (ls.hits < hit_max_)
                ++ls.hits;
        }
        ls.age = 0;
        ls.last_was_prefetch =
            ctx.type == trace::AccessType::Prefetch;
        ls.last_use = ++clock_;
        ls.cpu = ctx.cpu;
        return;
    }

    // Fill: reset per-line state for the newly inserted line.
    ls.age = 0;
    ls.hits = 0;
    ls.last_was_prefetch = ctx.type == trace::AccessType::Prefetch;
    ls.last_use = ++clock_;
    ls.cpu = ctx.cpu;
}

void
RlrPolicy::verifyInvariants(
    uint32_t set, std::span<const cache::BlockView> blocks) const
{
    (void)blocks;
    if (rd_ < 1)
        throw std::logic_error("RLR: predicted reuse distance 0");
    if (preuse_samples_ >= config_.rd_update_hits) {
        throw std::logic_error(util::format(
            "RLR: {} pending preuse samples, update due at {}",
            preuse_samples_, config_.rd_update_hits));
    }
    if (config_.optimized &&
        set_miss_ctr_[set] >= config_.age_tick_misses) {
        throw std::logic_error(util::format(
            "RLR: set {} miss counter {} outside tick period {}",
            set, set_miss_ctr_[set], config_.age_tick_misses));
    }
    for (uint32_t w = 0; w < ways_; ++w) {
        const LineState &ls = line(set, w);
        if (ls.age > age_max_) {
            throw std::logic_error(util::format(
                "RLR: age {} of set {} way {} exceeds the {}-bit "
                "maximum {}",
                ls.age, set, w, config_.age_bits, age_max_));
        }
        if (ls.hits > hit_max_) {
            throw std::logic_error(util::format(
                "RLR: hit count {} of set {} way {} exceeds the "
                "{}-bit maximum {}",
                ls.hits, set, w, config_.hit_bits, hit_max_));
        }
        if (ls.last_use > clock_) {
            throw std::logic_error(util::format(
                "RLR: last_use {} of set {} way {} ahead of "
                "clock {}",
                ls.last_use, set, w, clock_));
        }
    }
}

std::string
RlrPolicy::name() const
{
    std::string n = "RLR";
    if (!config_.optimized)
        n += "(unopt)";
    if (config_.multicore)
        n += "-mc";
    if (!config_.use_hit_priority)
        n += "-nohit";
    if (!config_.use_type_priority)
        n += "-notype";
    return n;
}

cache::StorageOverhead
RlrPolicy::overhead() const
{
    cache::StorageOverhead o;
    if (config_.optimized) {
        // 2b age + 1b hit + 1b type per line, 3b per set:
        // 16.75KB for a 2MB 16-way LLC.
        o.bits_per_line =
            config_.age_bits + config_.hit_bits + 1;
        o.bits_per_set = 3;
    } else {
        // The paper charges 10 bits per line for the unoptimized
        // variant (5b age + 2b hit counter + 1b type + recency
        // share): 40KB for a 2MB LLC.
        o.bits_per_line = 10;
    }
    o.global_bits = 16 /*RD*/ + 16 /*accumulator*/ + 5 /*count*/;
    if (config_.multicore)
        o.global_bits += 12.0 * config_.num_cores + 2.0 * 8;
    return o;
}

unsigned
RlrPolicy::corePriority(uint8_t cpu) const
{
    return core_priority_[cpu % config_.num_cores];
}

void
RlrPolicy::describeStats(stats::Registry &reg,
                         const std::string &prefix)
{
    reg.bindCounter(
        prefix + ".reuse_distance", [this] { return rd_; },
        "predicted reuse distance (age-counter units)");
    reg.bindCounter(
        prefix + ".accesses", [this] { return accesses_; },
        "LLC accesses observed by the policy");
    reg.bindCounter(
        prefix + ".preuse_samples",
        [this] { return static_cast<uint64_t>(preuse_samples_); },
        "demand-hit preuse samples toward the next RD update");
    if (config_.multicore) {
        for (unsigned c = 0; c < config_.num_cores; ++c) {
            reg.bindCounter(
                prefix + util::format(".core{}_priority", c),
                [this, c] { return core_priority_[c]; },
                "multicore eviction priority of this core's lines");
        }
    }
}

} // namespace rlr::core
