# Empty compiler generated dependencies file for test_hawkeye.
# This may be replaced when dependencies are built.
