#include "policies/lru.hh"

#include <stdexcept>

#include "util/bits.hh"
#include "util/format.hh"

namespace rlr::policies
{

void
LruPolicy::bind(const cache::CacheGeometry &geom)
{
    ways_ = geom.ways;
    clock_ = 0;
    last_use_.assign(static_cast<size_t>(geom.numSets()) * ways_, 0);
}

uint32_t
LruPolicy::findVictim(const cache::AccessContext &ctx,
                      std::span<const cache::BlockView> blocks)
{
    (void)blocks;
    const size_t base = static_cast<size_t>(ctx.set) * ways_;
    uint32_t victim = 0;
    uint64_t oldest = last_use_[base];
    for (uint32_t w = 1; w < ways_; ++w) {
        if (last_use_[base + w] < oldest) {
            oldest = last_use_[base + w];
            victim = w;
        }
    }
    return victim;
}

void
LruPolicy::onAccess(const cache::AccessContext &ctx)
{
    last_use_[static_cast<size_t>(ctx.set) * ways_ + ctx.way] =
        ++clock_;
}

void
LruPolicy::verifyInvariants(
    uint32_t set, std::span<const cache::BlockView> blocks) const
{
    (void)blocks;
    const size_t base = static_cast<size_t>(set) * ways_;
    for (uint32_t w = 0; w < ways_; ++w) {
        if (last_use_[base + w] > clock_) {
            throw std::logic_error(util::format(
                "LRU: last_use {} of set {} way {} ahead of "
                "clock {}",
                last_use_[base + w], set, w, clock_));
        }
    }
}

cache::StorageOverhead
LruPolicy::overhead() const
{
    cache::StorageOverhead o;
    // log2(ways) recency bits per line (4 bits for 16 ways -> the
    // paper's 16KB for a 2MB cache).
    o.bits_per_line = ways_ ? util::ceilLog2(ways_) : 4;
    return o;
}

uint32_t
LruPolicy::recencyRank(uint32_t set, uint32_t way) const
{
    const size_t base = static_cast<size_t>(set) * ways_;
    const uint64_t mine = last_use_[base + way];
    uint32_t rank = 0;
    for (uint32_t w = 0; w < ways_; ++w) {
        if (w != way && last_use_[base + w] < mine)
            ++rank;
    }
    return rank;
}

} // namespace rlr::policies
