/**
 * @file
 * Bounds the cost of the *disabled* observability path. With no
 * EventLog/EpochSampler attached, Cache::access dispatches once
 * (events_ || epoch_) into a hook-free body compiled with
 * `if constexpr`, so the entire disabled path is two pointer
 * loads and two predicted not-taken branches per access. This
 * test measures the access stream against the same stream plus
 * TWO MORE such checks per access — at least the dispatch's own
 * cost again — and asserts the marginal cost stays under 5%
 * (the measured cost on a quiet machine is well under 2%, but at
 * ~15 ns per access shared-host scheduler jitter is the same
 * order, so the bound leaves headroom; a real regression — a
 * hook left always-attached or a virtual call on the disabled
 * path — costs far more). The
 * probe checks test distinct external-linkage globals the
 * compiler must reload after every (opaque) cache access, the
 * same codegen as the real dispatch: load plus predicted
 * not-taken branch.
 *
 * Wall-clock measurements on shared machines are noisy, so the
 * test interleaves repetitions, compares minima (the classic
 * noise-robust estimator), and SKIPs instead of failing when the
 * baseline itself is too unstable to support the claim.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "cache/cache.hh"
#include "obs/epoch.hh"
#include "obs/event_log.hh"
#include "policies/lru.hh"
#include "util/rng.hh"

using namespace rlr;

namespace
{

/** Zero-state backing memory with a fixed latency. */
class FlatMemory : public cache::MemoryLevel
{
  public:
    uint64_t
    access(const cache::MemRequest &req, uint64_t now) override
    {
        if (req.type == trace::AccessType::Writeback)
            return now;
        return now + 100;
    }
    const std::string &name() const override { return name_; }

  private:
    std::string name_ = "flat";
};

cache::CacheGeometry
benchGeometry()
{
    cache::CacheGeometry g;
    g.name = "L";
    g.size_bytes = 64 * 1024; // 256 sets x 4 ways
    g.ways = 4;
    g.latency = 10;
    g.mshrs = 8;
    return g;
}

std::vector<uint64_t>
makeAddresses(size_t n)
{
    util::Rng rng(99);
    std::vector<uint64_t> addrs;
    addrs.reserve(n);
    for (size_t i = 0; i < n; ++i)
        addrs.push_back(rng.nextBounded(4096) * 64);
    return addrs;
}

} // namespace

/**
 * Never-attached observability targets. External linkage (and
 * distinct objects) so the optimizer can neither prove them null
 * nor merge the checks; an opaque call between iterations forces
 * a reload, exactly like the cache's own events_/epoch_ members.
 */
obs::EventLog *g_obs_probe_log = nullptr;
obs::EpochSampler *g_obs_probe_epoch = nullptr;

namespace
{

/**
 * One repetition: replay @p addrs through a fresh cache with no
 * observability attached. When @p extra_branches is set, add two
 * never-taken null checks per access — a copy of the disabled
 * path's only obs cost, the (events_ || epoch_) dispatch at the
 * top of Cache::access.
 * @return nanoseconds for the replay
 */
uint64_t
replayNanos(const std::vector<uint64_t> &addrs,
            bool extra_branches)
{
    FlatMemory mem;
    cache::Cache c(benchGeometry(),
                   std::make_unique<policies::LruPolicy>(), &mem);
    uint64_t sink = 0;
    const auto start = std::chrono::steady_clock::now();
    uint64_t now = 0;
    for (const uint64_t addr : addrs) {
        cache::MemRequest req;
        req.address = addr;
        req.pc = 0x400;
        req.type = trace::AccessType::Load;
        sink += c.access(req, now);
        now += 1000;
        if (extra_branches) {
            if (g_obs_probe_log != nullptr)
                g_obs_probe_log->onMiss(0);
            if (g_obs_probe_epoch != nullptr)
                g_obs_probe_epoch->onBypass();
        }
    }
    const auto end = std::chrono::steady_clock::now();
    // Keep the timing loop's result observable.
    EXPECT_NE(sink, 0u);
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            end - start)
            .count());
}

/**
 * One full measurement: interleaved repetitions, min-of-reps
 * ratio, with the 10% baseline-spread noise gate. Negative
 * return means "too noisy to judge".
 */
double
measureRatio(const std::vector<uint64_t> &addrs)
{
    constexpr int kReps = 9;
    std::vector<uint64_t> base, extra;
    for (int r = 0; r < kReps; ++r) {
        // Interleaved so slow drift hits both variants equally.
        base.push_back(replayNanos(addrs, false));
        extra.push_back(replayNanos(addrs, true));
    }

    const uint64_t base_min =
        *std::min_element(base.begin(), base.end());
    const uint64_t extra_min =
        *std::min_element(extra.begin(), extra.end());
    if (base_min == 0)
        return -1.0;

    // Noise gate: if the baseline's own repetitions spread more
    // than 10%, this machine cannot support a tight assertion.
    std::sort(base.begin(), base.end());
    const double spread =
        static_cast<double>(base[kReps / 2] - base_min) /
        static_cast<double>(base_min);
    if (spread > 0.10)
        return -1.0;

    return static_cast<double>(extra_min) /
           static_cast<double>(base_min);
}

} // namespace

TEST(ObsOverhead, DisabledPathBranchesUnderFivePercent)
{
    const auto addrs = makeAddresses(120000);
    // Warm the caches/allocator before measuring.
    replayNanos(addrs, false);

    // Noise only ever inflates a measured ratio, so the smallest
    // clean measurement is the best estimate of the true cost:
    // retry a few times and accept the first one under the bound.
    double best = -1.0;
    for (int attempt = 0; attempt < 5; ++attempt) {
        if (attempt != 0) {
            // Let a noise episode (another core's burst, a
            // frequency transition) pass before re-measuring.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
        const double ratio = measureRatio(addrs);
        if (ratio >= 0.0 && (best < 0.0 || ratio < best))
            best = ratio;
        if (best >= 0.0 && best < 1.05)
            break;
    }
    if (best < 0.0)
        GTEST_SKIP() << "baseline too noisy for a 5% claim";

    // Two extra never-taken branches per access — the disabled
    // path's one dispatch, paid a second time — cost < 5%.
    EXPECT_LT(best, 1.05)
        << "disabled-path branch proxy overhead "
        << (best - 1.0) * 100.0 << "%";
}
