#include "trace/instr_io.hh"

#include "util/logging.hh"

namespace rlr::trace
{

namespace
{

constexpr uint64_t kMagic = 0x524c524953ULL; // "RLRIS"
constexpr uint32_t kVersion = 1;

struct FileHeader
{
    uint64_t magic;
    uint32_t version;
    uint32_t reserved;
    uint64_t count;
};

struct FileRecord
{
    uint64_t pc;
    uint64_t mem_addr;
    uint64_t branch_target;
    uint8_t kind;
    uint8_t branch_taken;
    uint8_t dest_reg;
    uint8_t src0;
    uint8_t src1;
    uint8_t pad[3];
};

FileRecord
pack(const Instruction &i)
{
    FileRecord r{};
    r.pc = i.pc;
    r.mem_addr = i.mem_addr;
    r.branch_target = i.branch_target;
    r.kind = static_cast<uint8_t>(i.kind);
    r.branch_taken = i.branch_taken ? 1 : 0;
    r.dest_reg = i.dest_reg;
    r.src0 = i.src_regs[0];
    r.src1 = i.src_regs[1];
    return r;
}

Instruction
unpack(const FileRecord &r)
{
    Instruction i;
    i.pc = r.pc;
    i.mem_addr = r.mem_addr;
    i.branch_target = r.branch_target;
    i.kind = static_cast<InstrKind>(r.kind);
    i.branch_taken = r.branch_taken != 0;
    i.dest_reg = r.dest_reg;
    i.src_regs = {r.src0, r.src1};
    return i;
}

void
writeHeader(std::FILE *f, const std::string &path, uint64_t count)
{
    FileHeader hdr{kMagic, kVersion, 0, count};
    if (std::fwrite(&hdr, sizeof(hdr), 1, f) != 1)
        util::fatal("short write on '{}'", path);
}

} // namespace

void
saveInstructionTrace(const std::string &path,
                     const std::vector<Instruction> &instructions)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        util::fatal("cannot open '{}' for writing", path);
    writeHeader(f, path, instructions.size());
    for (const auto &i : instructions) {
        const FileRecord r = pack(i);
        if (std::fwrite(&r, sizeof(r), 1, f) != 1) {
            std::fclose(f);
            util::fatal("short write on '{}'", path);
        }
    }
    std::fclose(f);
}

void
captureInstructionTrace(const std::string &path,
                        InstructionSource &source, uint64_t count)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        util::fatal("cannot open '{}' for writing", path);
    writeHeader(f, path, count);
    Instruction instr;
    for (uint64_t i = 0; i < count; ++i) {
        if (!source.next(instr)) {
            source.reset();
            if (!source.next(instr)) {
                std::fclose(f);
                util::fatal("source '{}' is empty", source.name());
            }
        }
        const FileRecord r = pack(instr);
        if (std::fwrite(&r, sizeof(r), 1, f) != 1) {
            std::fclose(f);
            util::fatal("short write on '{}'", path);
        }
    }
    std::fclose(f);
}

std::vector<Instruction>
loadInstructionTrace(const std::string &path)
{
    FileInstructionSource src(path);
    std::vector<Instruction> out;
    out.reserve(src.size());
    Instruction instr;
    while (src.next(instr))
        out.push_back(instr);
    return out;
}

FileInstructionSource::FileInstructionSource(std::string path)
    : path_(std::move(path))
{
    name_ = "file:" + path_;
    file_ = std::fopen(path_.c_str(), "rb");
    if (!file_)
        util::fatal("cannot open '{}' for reading", path_);
    FileHeader hdr{};
    if (std::fread(&hdr, sizeof(hdr), 1, file_) != 1)
        util::fatal("cannot read header from '{}'", path_);
    if (hdr.magic != kMagic)
        util::fatal("'{}' is not an instruction trace", path_);
    if (hdr.version != kVersion)
        util::fatal("'{}': unsupported trace version {}", path_,
                    hdr.version);
    count_ = hdr.count;
}

FileInstructionSource::~FileInstructionSource()
{
    if (file_)
        std::fclose(file_);
}

bool
FileInstructionSource::next(Instruction &out)
{
    if (pos_ >= count_)
        return false;
    FileRecord r{};
    if (std::fread(&r, sizeof(r), 1, file_) != 1)
        util::fatal("truncated instruction trace '{}'", path_);
    out = unpack(r);
    ++pos_;
    return true;
}

void
FileInstructionSource::reset()
{
    if (std::fseek(file_, sizeof(FileHeader), SEEK_SET) != 0)
        util::fatal("cannot rewind '{}'", path_);
    pos_ = 0;
}

} // namespace rlr::trace
