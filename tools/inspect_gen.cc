#include "tools/inspect_gen.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <stdexcept>

#include "stats/export.hh"
#include "stats/stats.hh"
#include "util/format.hh"

namespace rlr::tools
{

namespace
{

/** Fixed-precision number; em dash for NaN/inf (missing data). */
std::string
fmt(double v, int prec = 2)
{
    if (!std::isfinite(v))
        return "—";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", prec, v);
    return buf;
}

std::string
fmtPct(uint64_t part, uint64_t whole)
{
    if (whole == 0)
        return "—";
    return fmt(100.0 * static_cast<double>(part) /
               static_cast<double>(whole)) +
           "%";
}

std::string
mdTable(const std::vector<std::string> &header,
        const std::vector<std::vector<std::string>> &rows)
{
    std::string out = "|";
    for (const auto &h : header)
        out += " " + h + " |";
    out += "\n|";
    for (size_t i = 0; i < header.size(); ++i)
        out += "---|";
    out += "\n";
    for (const auto &row : rows) {
        out += "|";
        for (const auto &c : row)
            out += " " + c + " |";
        out += "\n";
    }
    return out;
}

/** Events per kind resident in a log's ring. */
std::array<uint64_t, obs::kNumEventKinds>
kindCounts(const obs::EventLogData &log)
{
    std::array<uint64_t, obs::kNumEventKinds> counts{};
    for (const obs::Event &ev : log.events)
        ++counts[static_cast<size_t>(ev.kind)];
    return counts;
}

/** Bypass events per reason code. */
std::array<uint64_t, cache::kNumBypassReasons>
bypassReasonCounts(const obs::EventLogData &log)
{
    std::array<uint64_t, cache::kNumBypassReasons> counts{};
    for (const obs::Event &ev : log.events)
        if (ev.kind == obs::EventKind::Bypass)
            ++counts[static_cast<size_t>(ev.reason)];
    return counts;
}

void
renderCell(std::string &out, const obs::CellEvents &cell,
           const InspectOptions &opts)
{
    const obs::EventLogData &log = cell.log;
    out += util::format("## {} / {}\n\n", cell.workload,
                        cell.policy);
    out += util::format(
        "Seed {} · ring capacity {} · 1-in-{} set sampling · "
        "{} events recorded ({} overwritten, {} sampled out, "
        "{} resident)\n\n",
        cell.seed, log.config.capacity, log.config.sample_sets,
        log.recorded, log.overwritten, log.sampled_out,
        log.events.size());

    // --- Decision mix -------------------------------------------
    out += "### Decision mix (resident events)\n\n";
    const auto kinds = kindCounts(log);
    {
        std::vector<std::vector<std::string>> rows;
        for (size_t k = 0; k < obs::kNumEventKinds; ++k) {
            rows.push_back(
                {std::string(obs::eventKindName(
                     static_cast<obs::EventKind>(k))),
                 util::format("{}", kinds[k]),
                 fmtPct(kinds[k], log.events.size())});
        }
        out += mdTable({"Event", "Count", "Share"}, rows) + "\n";
    }

    // --- Bypass reasons -----------------------------------------
    const auto reasons = bypassReasonCounts(log);
    const uint64_t bypasses =
        kinds[static_cast<size_t>(obs::EventKind::Bypass)];
    if (bypasses > 0) {
        out += "### Bypass reasons\n\n";
        std::vector<std::vector<std::string>> rows;
        for (size_t r = 0; r < cache::kNumBypassReasons; ++r) {
            if (reasons[r] == 0)
                continue;
            rows.push_back(
                {std::string(obs::bypassReasonName(
                     static_cast<cache::BypassReason>(r))),
                 util::format("{}", reasons[r]),
                 fmtPct(reasons[r], bypasses)});
        }
        out += mdTable({"Reason", "Count", "Share"}, rows) + "\n";
    }

    // --- Victim statistics (paper Figs. 5-7) --------------------
    const VictimStats vs = victimStats(log);
    if (vs.evictions > 0) {
        out += "### Victim age by last access type (Fig. 5 "
               "style)\n\n";
        out += "Age at eviction in set-access units, grouped by "
               "the victim's last access type.\n\n";
        std::vector<std::vector<std::string>> rows;
        for (size_t t = 0; t < trace::kNumAccessTypes; ++t) {
            const auto type = static_cast<trace::AccessType>(t);
            rows.push_back(
                {std::string(trace::accessTypeName(type)),
                 util::format("{}", vs.victim_count[t]),
                 fmt(vs.avgVictimAge(type))});
        }
        out += mdTable({"Last type", "Victims", "Avg age"}, rows) +
               "\n";

        out += "### Victim hit counts (Fig. 6 style)\n\n";
        out += mdTable(
                   {"Hits before eviction", "Victims", "Share"},
                   {{"0", util::format("{}", vs.victims_zero_hits),
                     fmtPct(vs.victims_zero_hits, vs.evictions)},
                    {"1", util::format("{}", vs.victims_one_hit),
                     fmtPct(vs.victims_one_hit, vs.evictions)},
                    {">1",
                     util::format("{}", vs.victims_multi_hits),
                     fmtPct(vs.victims_multi_hits,
                            vs.evictions)}}) +
               "\n";

        out += "### Victim recency (Fig. 7 style)\n\n";
        out += "Position in the set's recency order at eviction "
               "(0 = LRU).\n\n";
        {
            std::vector<std::vector<std::string>> rows;
            for (size_t r = 0; r < vs.victim_recency.size(); ++r) {
                if (vs.victim_recency[r] == 0)
                    continue;
                rows.push_back(
                    {util::format("{}", r),
                     util::format("{}", vs.victim_recency[r]),
                     fmtPct(vs.victim_recency[r], vs.evictions)});
            }
            out += mdTable({"Recency", "Victims", "Share"}, rows) +
                   "\n";
        }

        out += "### Victim priority\n\n";
        uint64_t prio_min = ~0ULL, prio_max = 0, prio_sum = 0;
        for (const obs::Event &ev : log.events) {
            if (ev.kind != obs::EventKind::Eviction)
                continue;
            prio_min = std::min(prio_min, ev.priority);
            prio_max = std::max(prio_max, ev.priority);
            prio_sum += ev.priority;
        }
        out += util::format(
            "Policy priority of evicted lines: min {}, mean {}, "
            "max {}.\n\n",
            prio_min,
            fmt(static_cast<double>(prio_sum) /
                static_cast<double>(vs.evictions)),
            prio_max);
    }

    // --- Per-set heatmap ----------------------------------------
    const uint64_t total_accesses =
        std::accumulate(log.set_accesses.begin(),
                        log.set_accesses.end(), uint64_t{0});
    if (total_accesses > 0 && opts.top_sets > 0) {
        out += util::format(
            "### Hottest sets (top {} of {})\n\n", opts.top_sets,
            log.set_accesses.size());
        std::vector<size_t> order(log.set_accesses.size());
        std::iota(order.begin(), order.end(), size_t{0});
        std::stable_sort(order.begin(), order.end(),
                         [&](size_t a, size_t b) {
                             return log.set_accesses[a] >
                                    log.set_accesses[b];
                         });
        std::vector<std::vector<std::string>> rows;
        for (size_t i = 0;
             i < std::min(opts.top_sets, order.size()); ++i) {
            const size_t s = order[i];
            const uint64_t acc = log.set_accesses[s];
            const uint64_t miss =
                s < log.set_misses.size() ? log.set_misses[s] : 0;
            rows.push_back({util::format("{}", s),
                            util::format("{}", acc),
                            util::format("{}", miss),
                            fmtPct(miss, acc)});
        }
        out += mdTable({"Set", "Accesses", "Misses", "Miss rate"},
                       rows) +
               "\n";
    }
}

} // namespace

double
VictimStats::avgVictimAge(trace::AccessType t) const
{
    const auto i = static_cast<size_t>(t);
    return stats::safeDiv(static_cast<double>(victim_age_sum[i]),
                          static_cast<double>(victim_count[i]));
}

VictimStats
victimStats(const obs::EventLogData &log)
{
    VictimStats vs;
    vs.victim_recency.assign(std::max(1u, log.ways), 0);
    for (const obs::Event &ev : log.events) {
        if (ev.kind != obs::EventKind::Eviction)
            continue;
        ++vs.evictions;
        const auto t = static_cast<size_t>(ev.victim_last_type);
        vs.victim_age_sum[t] += ev.victim_age;
        ++vs.victim_count[t];
        if (ev.victim_hits == 0)
            ++vs.victims_zero_hits;
        else if (ev.victim_hits == 1)
            ++vs.victims_one_hit;
        else
            ++vs.victims_multi_hits;
        const size_t r =
            std::min<size_t>(ev.victim_recency,
                             vs.victim_recency.size() - 1);
        ++vs.victim_recency[r];
    }
    return vs;
}

std::string
generateInspect(const std::vector<obs::CellEvents> &cells,
                const InspectOptions &opts)
{
    std::string out = "# " + opts.title + "\n\n";
    if (!opts.source.empty())
        out += "Source: `" + opts.source + "`\n\n";
    out += util::format(
        "{} cell(s). Events are decision points of the production "
        "simulator's LLC (src/obs/ ring buffer); victim "
        "statistics mirror the paper's Figs. 5-7 and are "
        "cross-checkable against the ml offline pipeline.\n\n",
        cells.size());
    for (const obs::CellEvents &cell : cells)
        renderCell(out, cell, opts);
    return out;
}

std::string
generateInspect(const std::string &events_json,
                const InspectOptions &opts)
{
    return generateInspect(obs::eventsFromJson(events_json), opts);
}

size_t
checkChromeTrace(const std::string &trace_json)
{
    using stats::json::Value;
    const Value root = stats::json::parse(trace_json);
    if (!root.isObject())
        throw std::runtime_error(
            "chrome trace: document is not an object");
    const Value *events = root.find("traceEvents");
    if (!events || !events->isArray())
        throw std::runtime_error(
            "chrome trace: missing 'traceEvents' array");
    for (size_t i = 0; i < events->array.size(); ++i) {
        const Value &ev = events->array[i];
        const std::string where =
            util::format("chrome trace: event {}", i);
        if (!ev.isObject())
            throw std::runtime_error(where + " is not an object");
        if (!ev.find("name") || !ev.find("name")->isString())
            throw std::runtime_error(where + " lacks a name");
        const Value *ph = ev.find("ph");
        if (!ph || !ph->isString() || ph->string.empty())
            throw std::runtime_error(where + " lacks a phase");
        if (!ev.find("pid") || !ev.find("pid")->isNumber() ||
            !ev.find("tid") || !ev.find("tid")->isNumber())
            throw std::runtime_error(where + " lacks pid/tid");
        if (ph->string == "X") {
            const Value *ts = ev.find("ts");
            const Value *dur = ev.find("dur");
            if (!ts || !ts->isNumber() || !dur ||
                !dur->isNumber())
                throw std::runtime_error(
                    where + " ('X') lacks numeric ts/dur");
        }
    }
    return events->array.size();
}

namespace
{

/** Human-readable nanoseconds ("1.23ms", "450ns"). */
std::string
fmtNs(uint64_t ns)
{
    if (ns >= 1'000'000'000ULL) {
        return util::format(
            "{:.2f}s", static_cast<double>(ns) / 1e9);
    }
    if (ns >= 1'000'000ULL) {
        return util::format(
            "{:.2f}ms", static_cast<double>(ns) / 1e6);
    }
    if (ns >= 1'000ULL) {
        return util::format(
            "{:.2f}us", static_cast<double>(ns) / 1e3);
    }
    return util::format("{}ns", ns);
}

std::string
fmtKb(uint64_t kb)
{
    if (kb >= 1024 * 1024) {
        return util::format(
            "{:.1f}GB", static_cast<double>(kb) / (1024.0 * 1024.0));
    }
    if (kb >= 1024)
        return util::format("{:.1f}MB",
                            static_cast<double>(kb) / 1024.0);
    return util::format("{}KB", kb);
}

void
renderProfileNode(std::string &out, const obs::ProfileNode &node,
                  uint64_t grand_total, int depth)
{
    const double pct =
        grand_total == 0
            ? 0.0
            : 100.0 * static_cast<double>(node.total_ns) /
                  static_cast<double>(grand_total);
    out += util::format(
        "{}{}  calls {}  total {} ({:.1f}%)  self {}  "
        "p50 <{}  p99 <{}\n",
        std::string(static_cast<size_t>(depth) * 2, ' '),
        node.name, node.calls, fmtNs(node.total_ns), pct,
        fmtNs(node.self_ns), fmtNs(node.p50_ns),
        fmtNs(node.p99_ns));
    std::vector<const obs::ProfileNode *> kids;
    kids.reserve(node.children.size());
    for (const auto &c : node.children)
        kids.push_back(&c);
    std::stable_sort(kids.begin(), kids.end(),
                     [](const obs::ProfileNode *a,
                        const obs::ProfileNode *b) {
                         return a->total_ns > b->total_ns;
                     });
    for (const auto *c : kids)
        renderProfileNode(out, *c, grand_total, depth + 1);
}

} // namespace

std::string
renderTop(const obs::Heartbeat &hb)
{
    std::string out = util::format(
        "sweep heartbeat  seq {}  elapsed {:.1f}s{}\n",
        hb.sequence, hb.elapsed_s, hb.done ? "  [DONE]" : "");
    out += util::format(
        "  cells: {}/{} done ({} resumed), {} failed, "
        "{} running\n",
        hb.cells_done + hb.cells_resumed, hb.cells_total,
        hb.cells_resumed, hb.cells_failed, hb.cells_running);
    out += util::format(
        "  throughput {:.2f} cells/s  eta {:.1f}s  rss {} "
        "(peak {})\n",
        hb.throughput, hb.eta_s, fmtKb(hb.rss_kb),
        fmtKb(hb.max_rss_kb));

    if (hb.workers.empty()) {
        out += hb.done ? "  workers: (all finished)\n"
                       : "  workers: (idle)\n";
        return out;
    }

    // Straggler cut: a worker whose current cell has been running
    // much longer than its busy peers (or 5s when all are young).
    std::vector<double> ages;
    ages.reserve(hb.workers.size());
    for (const auto &w : hb.workers)
        ages.push_back(w.age_s);
    std::sort(ages.begin(), ages.end());
    const double median = ages[ages.size() / 2];
    const double straggler_cut = std::max(5.0, 3.0 * median);

    out += "  workers:\n";
    for (const auto &w : hb.workers) {
        out += util::format(
            "    w{:<3} {:<28} attempt {}  {:>7.1f}s{}\n",
            w.worker, w.cell, w.attempt, w.age_s,
            w.age_s > straggler_cut ? "  << STRAGGLER" : "");
    }
    return out;
}

std::string
renderProfileTree(const obs::ProfileData &data)
{
    std::string out = util::format(
        "profile  threads {}  spans {}  sites {}\n",
        data.threads, data.spans, data.sites);
    std::vector<const obs::ProfileNode *> roots;
    roots.reserve(data.roots.size());
    uint64_t grand_total = 0;
    for (const auto &r : data.roots) {
        roots.push_back(&r);
        grand_total += r.total_ns;
    }
    std::stable_sort(roots.begin(), roots.end(),
                     [](const obs::ProfileNode *a,
                        const obs::ProfileNode *b) {
                         return a->total_ns > b->total_ns;
                     });
    for (const auto *r : roots)
        renderProfileNode(out, *r, grand_total, 1);
    return out;
}

} // namespace rlr::tools
