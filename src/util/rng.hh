/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (synthetic workloads,
 * epsilon-greedy exploration, BRRIP throttling, workload mixes) draws
 * from seeded Rng instances so that every experiment is reproducible
 * from its printed seed.
 */

#ifndef RLR_UTIL_RNG_HH
#define RLR_UTIL_RNG_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rlr::util
{

/**
 * xoshiro256** generator (Blackman/Vigna) seeded via splitmix64.
 * Small, fast, and good enough statistical quality for simulation.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** @return the next raw 64-bit value. */
    uint64_t next();

    /** @return uniform integer in [0, bound) ; bound must be > 0. */
    uint64_t nextBounded(uint64_t bound);

    /** @return uniform integer in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** @return uniform double in [0, 1). */
    double nextDouble();

    /** @return true with probability @p p. */
    bool chance(double p);

    /** @return geometric sample: number of failures before success. */
    uint64_t nextGeometric(double p);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (size_t i = v.size(); i > 1; --i)
            std::swap(v[i - 1], v[nextBounded(i)]);
    }

    /** Fork a statistically independent child generator. */
    Rng fork();

  private:
    std::array<uint64_t, 4> state_;
};

/**
 * Zipf(alpha) sampler over ranks [0, n). Precomputes the CDF once;
 * sampling is O(log n). Models hot/cold skew in cache access streams.
 */
class ZipfSampler
{
  public:
    /** @param n number of items; @param alpha skew (>0, 1.0 typical) */
    ZipfSampler(uint64_t n, double alpha);

    /** Draw a rank in [0, n); rank 0 is the hottest. */
    uint64_t sample(Rng &rng) const;

    uint64_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace rlr::util

#endif // RLR_UTIL_RNG_HH
