#include "mem/dram.hh"

#include <algorithm>

#include "obs/profiler.hh"
#include "util/logging.hh"

namespace rlr::mem
{

Dram::Dram(DramConfig config, std::string name)
    : config_(config), name_(std::move(name)), stats_(name_)
{
    util::ensure(config_.banks > 0, "Dram: zero banks");
    banks_.resize(config_.banks);
}

uint64_t
Dram::access(const cache::MemRequest &req, uint64_t now)
{
    RLR_PROF_SCOPE("sim.dram.access");
    const uint64_t row = req.address / config_.row_bytes;
    Bank &bank = banks_[row % config_.banks];

    const bool row_hit = bank.open_row == row;
    const uint32_t service = row_hit ? config_.row_hit_latency
                                     : config_.row_miss_latency;
    ++stats_.counter(row_hit ? "row_hits" : "row_misses");

    if (req.type == trace::AccessType::Writeback) {
        ++stats_.counter("writes");
        // Posted write: buffered in the write queue and drained
        // opportunistically in row-sorted batches (as real
        // controllers do), so it charges channel bandwidth but
        // does not perturb the banks' open rows or delay reads
        // beyond that. The requester never waits, and a write
        // arriving "in the future" (at a fill timestamp) must not
        // push bank state unboundedly ahead of program time.
        const uint64_t start = std::max(now, channel_free_);
        channel_free_ = start + config_.channel_cycles;
        return now;
    }

    // Read: wait for the bank, then occupy the shared channel.
    uint64_t start = std::max(now, bank.busy_until);
    start = std::max(start, channel_free_);
    const uint64_t done = start + service;

    bank.open_row = row;
    bank.busy_until = done;
    channel_free_ = start + config_.channel_cycles;

    ++stats_.counter("reads");
    read_latency_.sample(done - now);
    return done;
}

void
Dram::describeStats(stats::Registry &reg, const std::string &prefix)
{
    reg.bindStatSet(prefix, &stats_,
                    "DRAM access counters of " + name_);
    reg.formula(
        prefix + ".row_hit_rate",
        [this](const stats::Registry &) {
            const auto hits = stats_.value("row_hits");
            const auto misses = stats_.value("row_misses");
            return stats::hitRate(hits, hits + misses);
        },
        "open-row hit rate in [0, 1]");
    reg.bindDistribution(
        prefix + ".read_latency", &read_latency_,
        "read service latency (cycles, incl. queuing)");
}

} // namespace rlr::mem
