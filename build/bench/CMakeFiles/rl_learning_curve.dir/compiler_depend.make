# Empty compiler generated dependencies file for rl_learning_curve.
# This may be replaced when dependencies are built.
