/**
 * @file
 * Cooperative cancellation for long-running simulation loops.
 *
 * A CancelToken is a tiny lock-free flag shared between a monitor
 * (watchdog thread, signal handler drain) and a worker running a
 * simulation. Workers poll `cancelled()` at cheap checkpoints —
 * the core run loop checks once every kCancelCheckInterval
 * instructions — and unwind by throwing CancelledError, which the
 * SweepRunner turns into a per-cell error instead of a hung or
 * torn-down sweep. The disabled path (no token attached) costs
 * one predicted branch per checkpoint; test_cancel_token bounds
 * it under 1%.
 */

#ifndef RLR_UTIL_CANCEL_TOKEN_HH
#define RLR_UTIL_CANCEL_TOKEN_HH

#include <atomic>
#include <stdexcept>

namespace rlr::util
{

/** How often (in loop iterations) run loops poll their token. */
inline constexpr uint64_t kCancelCheckInterval = 4096;

/** One-shot, thread-safe cancellation flag with a reason. */
class CancelToken
{
  public:
    /** Why the token was cancelled; the first cancel() wins. */
    enum class Reason : int { None = 0, Timeout, Signal, Other };

    /** Request cancellation; later calls keep the first reason. */
    void
    cancel(Reason r = Reason::Other) noexcept
    {
        int expected = 0;
        state_.compare_exchange_strong(expected,
                                       static_cast<int>(r),
                                       std::memory_order_release,
                                       std::memory_order_relaxed);
    }

    /** @return true once cancel() has been called. */
    bool
    cancelled() const noexcept
    {
        return state_.load(std::memory_order_relaxed) != 0;
    }

    Reason
    reason() const noexcept
    {
        return static_cast<Reason>(
            state_.load(std::memory_order_acquire));
    }

    /** Re-arm for the next attempt (retry loops). */
    void
    reset() noexcept
    {
        state_.store(0, std::memory_order_release);
    }

    /** Human name of @p r ("timeout", "signal", ...). */
    static const char *reasonName(Reason r) noexcept;

  private:
    std::atomic<int> state_{0};
};

/**
 * Thrown from a cancellation checkpoint when the attached token
 * has been cancelled; carries the token's reason so callers can
 * distinguish a watchdog timeout from a signal drain.
 */
class CancelledError : public std::runtime_error
{
  public:
    explicit CancelledError(CancelToken::Reason reason);

    CancelToken::Reason reason() const noexcept { return reason_; }

  private:
    CancelToken::Reason reason_;
};

} // namespace rlr::util

#endif // RLR_UTIL_CANCEL_TOKEN_HH
