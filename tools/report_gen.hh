/**
 * @file
 * Report generator: turns a SweepRunner --json export (including
 * the embedded per-cell stats::Registry snapshots) into a
 * paper-fidelity REPORT.md scoreboard with Table-IV and
 * Fig-1/10/12/13 style sections, each carrying the paper's
 * published numbers as expected-value columns.
 *
 * Output is deterministic: no timestamps, fixed formatting, and
 * row/column order follows first appearance in the input.
 */

#ifndef RLR_TOOLS_REPORT_GEN_HH
#define RLR_TOOLS_REPORT_GEN_HH

#include <string>

namespace rlr::tools
{

/** Knobs for generateReport(). */
struct ReportOptions
{
    /** H1 title of the report. */
    std::string title = "RLR reproduction report";
    /** Label of the input (e.g. the sweep JSON path); "" omits. */
    std::string source;
};

/**
 * Render a REPORT.md document from SweepRunner --json text.
 * @throws std::runtime_error on malformed JSON or a root that is
 *         not an array of sweep cells
 */
std::string generateReport(const std::string &sweep_json,
                           const ReportOptions &opts = {});

} // namespace rlr::tools

#endif // RLR_TOOLS_REPORT_GEN_HH
