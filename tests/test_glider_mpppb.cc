/** @file Tests for the Glider and MPPPB baselines. */

#include <gtest/gtest.h>

#include "policies/glider.hh"
#include "policies/mpppb.hh"
#include "tests/policy_test_util.hh"

using namespace rlr;
using namespace rlr::policies;

TEST(Glider, ColdPredictorIsFriendly)
{
    GliderPolicy p;
    p.bind(test::tinyGeometry());
    // Zero weights >= threshold 0 -> friendly by default.
    EXPECT_TRUE(p.predictsFriendly(0x1234));
    EXPECT_EQ(p.decisionValue(0x1234), 0);
}

TEST(Glider, LearnsAverseStreamingPc)
{
    GliderConfig cfg;
    cfg.sampled_sets = 16;
    GliderPolicy p(cfg);
    std::vector<uint64_t> lines;
    for (uint64_t i = 0; i < 4000; ++i)
        lines.push_back(i); // never reused
    const auto trace = test::loadTrace(lines, 0xbeef);
    ml::OfflineSimulator sim(test::smallOffline(), &trace);
    sim.runPolicy(p);
    EXPECT_FALSE(p.predictsFriendly(0xbeef));
    EXPECT_LT(p.decisionValue(0xbeef), 0);
}

TEST(Glider, KeepsReuseHeavyPcFriendly)
{
    GliderConfig cfg;
    cfg.sampled_sets = 16;
    GliderPolicy p(cfg);
    std::vector<uint64_t> lines;
    for (int rep = 0; rep < 400; ++rep)
        for (uint64_t l = 0; l < 8; ++l)
            lines.push_back(l);
    const auto trace = test::loadTrace(lines, 0xf00d);
    ml::OfflineSimulator sim(test::smallOffline(), &trace);
    const auto stats = sim.runPolicy(p);
    EXPECT_TRUE(p.predictsFriendly(0xf00d));
    EXPECT_GT(stats.hitRate(), 0.9);
}

TEST(Glider, MixedWorkloadBeatsChanceProtection)
{
    GliderConfig cfg;
    cfg.sampled_sets = 16;
    GliderPolicy p(cfg);
    trace::LlcTrace t;
    uint64_t scan = 1000;
    for (int rep = 0; rep < 600; ++rep) {
        for (uint64_t l = 0; l < 2; ++l)
            t.append({0x400, l * 64, trace::AccessType::Load, 0});
        t.append({0x900, (scan++) * 64,
                  trace::AccessType::Load, 0});
    }
    ml::OfflineSimulator sim(test::smallOffline(), &t);
    const auto stats = sim.runPolicy(p);
    EXPECT_GT(stats.hitRate(), 0.55);
}

TEST(Glider, OverheadMatchesPaper)
{
    GliderPolicy p;
    cache::CacheGeometry g;
    g.size_bytes = 2 * 1024 * 1024;
    g.ways = 16;
    p.bind(g);
    EXPECT_NEAR(p.overhead().totalKiB(g), 61.6, 0.2);
    EXPECT_TRUE(p.usesPc());
}

TEST(Mpppb, ColdPredictionNeutral)
{
    MpppbPolicy p;
    p.bind(test::tinyGeometry());
    EXPECT_EQ(p.predict(0x400, 0x1000, trace::AccessType::Load),
              0);
}

TEST(Mpppb, TrainsPositiveOnReuse)
{
    MpppbPolicy p;
    p.bind(test::tinyGeometry());
    cache::AccessContext c;
    c.set = 0;
    c.way = 0;
    c.pc = 0x777;
    c.full_addr = 0x4000;
    c.type = trace::AccessType::Load;
    c.hit = false;
    p.onAccess(c);
    c.hit = true;
    for (int i = 0; i < 10; ++i)
        p.onAccess(c);
    EXPECT_GT(p.predict(0x777, 0x4000, trace::AccessType::Load),
              0);
}

TEST(Mpppb, TrainsNegativeOnDeadEviction)
{
    MpppbPolicy p;
    p.bind(test::tinyGeometry());
    cache::AccessContext c;
    c.set = 0;
    c.way = 1;
    c.pc = 0x888;
    c.full_addr = 0x9000;
    c.type = trace::AccessType::Load;
    c.hit = false;
    for (int i = 0; i < 10; ++i) {
        p.onAccess(c);
        p.onEviction(0, 1,
                     cache::BlockView{true, false, false, 0x9000});
    }
    EXPECT_LT(p.predict(0x888, 0x9000, trace::AccessType::Load),
              0);
}

TEST(Mpppb, BypassesConfidentlyDeadFills)
{
    MpppbConfig cfg;
    cfg.bypass_margin = 10;
    MpppbPolicy p(cfg);
    p.bind(test::tinyGeometry());
    cache::AccessContext c;
    c.set = 0;
    c.pc = 0x999;
    c.full_addr = 0xa000;
    c.type = trace::AccessType::Load;
    c.hit = false;
    // Detrain heavily.
    for (int i = 0; i < 20; ++i) {
        c.way = 2;
        p.onAccess(c);
        p.onEviction(0, 2,
                     cache::BlockView{true, false, false, 0xa000});
    }
    std::vector<cache::BlockView> blocks(4);
    cache::AccessContext miss = c;
    EXPECT_EQ(p.findVictim(miss, blocks),
              cache::ReplacementPolicy::kBypass);
    // Writebacks never bypass.
    miss.type = trace::AccessType::Writeback;
    EXPECT_NE(p.findVictim(miss, blocks),
              cache::ReplacementPolicy::kBypass);
}

TEST(Mpppb, ProtectsHotLinesOnScanMix)
{
    MpppbPolicy p;
    trace::LlcTrace t;
    uint64_t scan = 1000;
    for (int rep = 0; rep < 600; ++rep) {
        for (uint64_t l = 0; l < 2; ++l)
            t.append({0x400, l * 64, trace::AccessType::Load, 0});
        t.append({0x900, (scan++) * 64,
                  trace::AccessType::Load, 0});
    }
    ml::OfflineSimulator sim(test::smallOffline(), &t);
    const auto stats = sim.runPolicy(p);
    EXPECT_GT(stats.hitRate(), 0.55);
}

TEST(Mpppb, OverheadNearPaper)
{
    MpppbPolicy p;
    cache::CacheGeometry g;
    g.size_bytes = 2 * 1024 * 1024;
    g.ways = 16;
    p.bind(g);
    EXPECT_NEAR(p.overhead().totalKiB(g), 28.0, 1.5);
}
