#include "sim/fault_plan.hh"

#include <cstdlib>

#include "util/format.hh"

namespace rlr::sim
{

namespace
{

/** FNV-1a 64-bit (matches the sweep seed-derivation hash). */
uint64_t
hash64(uint64_t seed, uint64_t x)
{
    uint64_t h = 1469598103934665603ULL ^ seed;
    for (int i = 0; i < 8; ++i) {
        h ^= (x >> (8 * i)) & 0xff;
        h *= 1099511628211ULL;
    }
    return h;
}

FaultKind
parseKind(const std::string &word)
{
    if (word == "throw")
        return FaultKind::Throw;
    if (word == "transient")
        return FaultKind::Transient;
    if (word == "hang")
        return FaultKind::Hang;
    if (word == "abort")
        return FaultKind::AbortProcess;
    if (word == "corrupt-journal")
        return FaultKind::CorruptJournal;
    if (word == "kill-worker")
        return FaultKind::KillWorker;
    if (word == "stall-worker")
        return FaultKind::StallWorker;
    throw std::runtime_error(util::format(
        "--faults: unknown fault kind '{}' (expected throw, "
        "transient, hang, abort, corrupt-journal, kill-worker, "
        "or stall-worker)",
        word));
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::None:
        return "none";
      case FaultKind::Throw:
        return "throw";
      case FaultKind::Transient:
        return "transient";
      case FaultKind::Hang:
        return "hang";
      case FaultKind::AbortProcess:
        return "abort";
      case FaultKind::CorruptJournal:
        return "corrupt-journal";
      case FaultKind::KillWorker:
        return "kill-worker";
      case FaultKind::StallWorker:
        return "stall-worker";
    }
    return "?";
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;

        Entry entry;
        // Split `kind[:N]` from the selector at the FIRST '@' or
        // '%' — labels ("429.mcf:RLR") may contain ':' but never
        // '@' or '%'.
        const size_t at = item.find('@');
        const size_t pct = item.find('%');
        std::string head, selector;
        if (at != std::string::npos &&
            (pct == std::string::npos || at < pct)) {
            head = item.substr(0, at);
            selector = item.substr(at + 1);
        } else if (pct != std::string::npos) {
            head = item.substr(0, pct);
            selector = item.substr(pct + 1);
            entry.by_rate = true;
        } else {
            throw std::runtime_error(util::format(
                "--faults: entry '{}' has no selector (use "
                "kind@index, kind@workload:policy, or kind%rate)",
                item));
        }

        // Optional `:N` attempt count on the kind word.
        const size_t colon = head.find(':');
        if (colon != std::string::npos) {
            const std::string count = head.substr(colon + 1);
            char *end = nullptr;
            const long n = std::strtol(count.c_str(), &end, 10);
            if (end == nullptr || *end != '\0' || n <= 0) {
                throw std::runtime_error(util::format(
                    "--faults: bad attempt count '{}' in '{}'",
                    count, item));
            }
            entry.fail_attempts = static_cast<uint32_t>(n);
            head = head.substr(0, colon);
        }
        entry.kind = parseKind(head);

        if (entry.by_rate) {
            char *end = nullptr;
            entry.rate = std::strtod(selector.c_str(), &end);
            if (end == nullptr || *end != '\0' ||
                !(entry.rate >= 0.0 && entry.rate <= 1.0)) {
                throw std::runtime_error(util::format(
                    "--faults: bad rate '{}' in '{}' (want a "
                    "number in [0,1])",
                    selector, item));
            }
        } else if (!selector.empty() &&
                   selector.find_first_not_of("0123456789") ==
                       std::string::npos) {
            entry.by_index = true;
            entry.index = static_cast<size_t>(
                std::strtoull(selector.c_str(), nullptr, 10));
        } else if (!selector.empty()) {
            entry.label = selector;
        } else {
            throw std::runtime_error(util::format(
                "--faults: empty selector in '{}'", item));
        }
        plan.entries_.push_back(std::move(entry));
    }
    return plan;
}

FaultAction
FaultPlan::actionFor(size_t index, const std::string &label,
                     uint64_t seed) const
{
    for (const auto &e : entries_) {
        bool match = false;
        if (e.by_index) {
            match = e.index == index;
        } else if (e.by_rate) {
            // Deterministic in the cell seed and index, never in
            // scheduling order or thread count.
            const uint64_t h = hash64(seed, index);
            const double u =
                static_cast<double>(h >> 11) * 0x1.0p-53;
            match = u < e.rate;
        } else {
            match = e.label == label;
        }
        if (match)
            return FaultAction{e.kind, e.fail_attempts};
    }
    return FaultAction{};
}

FaultPlan
FaultPlan::withoutProcessFatal() const
{
    FaultPlan out;
    for (const auto &e : entries_) {
        if (e.kind == FaultKind::AbortProcess ||
            e.kind == FaultKind::KillWorker) {
            continue;
        }
        out.entries_.push_back(e);
    }
    return out;
}

} // namespace rlr::sim
