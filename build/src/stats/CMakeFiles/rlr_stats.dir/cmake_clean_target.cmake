file(REMOVE_RECURSE
  "librlr_stats.a"
)
