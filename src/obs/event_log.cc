#include "obs/event_log.hh"

#include "util/logging.hh"

namespace rlr::obs
{

std::string_view
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Fill: return "fill";
      case EventKind::Hit: return "hit";
      case EventKind::Eviction: return "evict";
      case EventKind::Bypass: return "bypass";
    }
    return "?";
}

std::string_view
bypassReasonName(cache::BypassReason reason)
{
    switch (reason) {
      case cache::BypassReason::None: return "none";
      case cache::BypassReason::Policy: return "policy";
      case cache::BypassReason::AgeProtected:
        return "age_protected";
      case cache::BypassReason::LowConfidencePrefetch:
        return "low_confidence_pf";
    }
    return "?";
}

EventLog::EventLog(EventLogConfig config) : config_(config)
{
    util::ensure(config_.capacity >= 1, "EventLog: zero capacity");
    util::ensure(config_.sample_sets >= 1,
                 "EventLog: zero sample_sets");
    ring_.reserve(config_.capacity);
}

void
EventLog::bind(uint32_t num_sets, uint32_t ways)
{
    num_sets_ = num_sets;
    ways_ = ways;
    reset();
}

void
EventLog::reset()
{
    shadows_.assign(static_cast<size_t>(num_sets_) * ways_,
                    LineShadow{});
    set_accesses_.assign(num_sets_, 0);
    set_misses_.assign(num_sets_, 0);
    ring_.clear();
    next_ = 0;
    access_no_ = 0;
    recorded_ = 0;
    overwritten_ = 0;
    sampled_out_ = 0;
}

EventLog::LineShadow &
EventLog::shadow(uint32_t set, uint32_t way)
{
    return shadows_[static_cast<size_t>(set) * ways_ + way];
}

void
EventLog::push(const Event &ev)
{
    ++recorded_;
    if (ring_.size() < config_.capacity) {
        ring_.push_back(ev);
        return;
    }
    // Full: overwrite the oldest event (next_ is the ring cursor).
    ring_[next_] = ev;
    next_ = (next_ + 1) % ring_.size();
    ++overwritten_;
}

void
EventLog::onHit(uint32_t set, uint32_t way,
                const trace::LlcAccess &access, uint64_t priority)
{
    ++access_no_;
    const uint64_t set_no = ++set_accesses_[set];
    LineShadow &sh = shadow(set, way);
    sh.valid = true;
    ++sh.hits;
    sh.last_touch = set_no;
    sh.last_type = access.type;

    if (!sampled(set)) {
        ++sampled_out_;
        return;
    }
    Event ev;
    ev.access_no = access_no_;
    ev.address = cache::CacheGeometry::lineAddress(access.address);
    ev.pc = access.pc;
    ev.priority = priority;
    ev.set = set;
    ev.way = static_cast<uint8_t>(way);
    ev.cpu = access.cpu;
    ev.kind = EventKind::Hit;
    ev.type = access.type;
    push(ev);
}

void
EventLog::onMiss(uint32_t set)
{
    ++access_no_;
    ++set_accesses_[set];
    ++set_misses_[set];
}

void
EventLog::onFill(uint32_t set, uint32_t way,
                 const trace::LlcAccess &access, uint64_t priority)
{
    LineShadow &sh = shadow(set, way);
    sh.valid = true;
    sh.hits = 0;
    sh.last_touch = set_accesses_[set];
    sh.last_type = access.type;

    if (!sampled(set)) {
        ++sampled_out_;
        return;
    }
    Event ev;
    ev.access_no = access_no_;
    ev.address = cache::CacheGeometry::lineAddress(access.address);
    ev.pc = access.pc;
    ev.priority = priority;
    ev.set = set;
    ev.way = static_cast<uint8_t>(way);
    ev.cpu = access.cpu;
    ev.kind = EventKind::Fill;
    ev.type = access.type;
    push(ev);
}

void
EventLog::onEviction(uint32_t set, uint32_t way,
                     uint64_t victim_address,
                     const trace::LlcAccess &incoming,
                     uint64_t priority)
{
    const LineShadow &victim = shadow(set, way);
    uint8_t recency = 0;
    for (uint32_t w = 0; w < ways_; ++w) {
        if (w == way)
            continue;
        const LineShadow &other = shadow(set, w);
        if (other.valid && other.last_touch < victim.last_touch)
            ++recency;
    }

    if (!sampled(set)) {
        ++sampled_out_;
        return;
    }
    Event ev;
    ev.access_no = access_no_;
    ev.address =
        cache::CacheGeometry::lineAddress(victim_address);
    ev.pc = incoming.pc;
    ev.priority = priority;
    ev.set = set;
    ev.way = static_cast<uint8_t>(way);
    ev.cpu = incoming.cpu;
    ev.kind = EventKind::Eviction;
    ev.type = incoming.type;
    ev.victim_age = static_cast<uint32_t>(
        set_accesses_[set] - victim.last_touch);
    ev.victim_hits = victim.hits;
    ev.victim_recency = recency;
    ev.victim_last_type = victim.last_type;
    push(ev);
}

void
EventLog::onBypass(uint32_t set, const trace::LlcAccess &access,
                   cache::BypassReason reason)
{
    if (!sampled(set)) {
        ++sampled_out_;
        return;
    }
    Event ev;
    ev.access_no = access_no_;
    ev.address = cache::CacheGeometry::lineAddress(access.address);
    ev.pc = access.pc;
    ev.set = set;
    ev.cpu = access.cpu;
    ev.kind = EventKind::Bypass;
    ev.type = access.type;
    ev.reason = reason;
    push(ev);
}

EventLogData
EventLog::data() const
{
    EventLogData d;
    d.config = config_;
    d.ways = ways_;
    d.recorded = recorded_;
    d.overwritten = overwritten_;
    d.sampled_out = sampled_out_;
    d.set_accesses = set_accesses_;
    d.set_misses = set_misses_;
    d.events.reserve(ring_.size());
    // Oldest first: once the ring has wrapped, next_ points at the
    // oldest surviving event.
    if (ring_.size() < config_.capacity) {
        d.events = ring_;
    } else {
        for (size_t i = 0; i < ring_.size(); ++i)
            d.events.push_back(
                ring_[(next_ + i) % ring_.size()]);
    }
    return d;
}

void
EventLog::describeStats(stats::Registry &reg,
                        const std::string &prefix)
{
    reg.bindCounter(
        prefix + ".recorded", [this] { return recorded_; },
        "decision events pushed into the ring buffer");
    reg.bindCounter(
        prefix + ".overwritten", [this] { return overwritten_; },
        "events lost to ring wraparound");
    reg.bindCounter(
        prefix + ".sampled_out", [this] { return sampled_out_; },
        "events skipped by 1-in-N set sampling");
    reg.bindCounter(
        prefix + ".resident",
        [this] { return static_cast<uint64_t>(ring_.size()); },
        "events currently resident in the ring");
}

} // namespace rlr::obs
