# Empty compiler generated dependencies file for fig13_multicore.
# This may be replaced when dependencies are built.
