/**
 * @file
 * Glider replacement (Shi et al., MICRO 2019), the strongest
 * PC-based baseline in the paper's Table I (61.6KB @ 2MB).
 *
 * Glider distills an offline attention LSTM into hardware: an
 * Integer Support Vector Machine over a PC History Register (the
 * unordered set of the last K load PCs). Each PC in the history
 * contributes one trained weight; the sum classifies the access
 * as cache-friendly or cache-averse. Training labels come from
 * OPTgen over sampled sets, exactly as in Hawkeye.
 */

#ifndef RLR_POLICIES_GLIDER_HH
#define RLR_POLICIES_GLIDER_HH

#include <deque>
#include <unordered_map>
#include <vector>

#include "cache/replacement.hh"

namespace rlr::policies
{

/** Glider configuration. */
struct GliderConfig
{
    /** Per-line RRIP bits (values 0..7). */
    unsigned rrpv_bits = 3;
    /** PCs kept in the history register. */
    unsigned history_length = 5;
    /** ISVM table entries (indexed by hashed PC). */
    unsigned isvm_entries = 2048;
    /** Weights per ISVM entry (selected by history-PC hash). */
    unsigned weights_per_entry = 16;
    /** Weight saturation bound. */
    int weight_max = 31;
    /** Decision threshold: sum >= threshold -> friendly. */
    int threshold = 0;
    /** Training margin: stop updating once |sum| exceeds it. */
    int margin = 60;
    /** Sampled sets feeding OPTgen. */
    uint32_t sampled_sets = 64;
    /** OPTgen window in set accesses (x associativity). */
    uint32_t history_factor = 8;
};

/** Glider policy. */
class GliderPolicy : public cache::ReplacementPolicy
{
  public:
    explicit GliderPolicy(GliderConfig config = {});

    void bind(const cache::CacheGeometry &geom) override;
    uint32_t
    findVictim(const cache::AccessContext &ctx,
               std::span<const cache::BlockView> blocks) override;
    void onAccess(const cache::AccessContext &ctx) override;
    std::string name() const override { return "Glider"; }
    bool usesPc() const override { return true; }
    cache::StorageOverhead overhead() const override;

    /** ISVM decision value for a PC given the current history. */
    int decisionValue(uint64_t pc) const;

    /** @return true when the ISVM classifies pc as friendly. */
    bool predictsFriendly(uint64_t pc) const;

  private:
    struct LineState
    {
        uint8_t rrpv = 7;
        /** Snapshot of (pc index, weight indices) for detraining. */
        uint32_t pc_index = 0;
        std::vector<uint16_t> weight_slots;
        bool friendly = false;
    };

    struct SamplerSet
    {
        std::vector<uint8_t> occupancy;
        /** line -> (time, pc index, weight slots). */
        std::unordered_map<
            uint64_t,
            std::tuple<uint64_t, uint32_t, std::vector<uint16_t>>>
            entries;
        uint64_t time = 0;
    };

    LineState &line(uint32_t set, uint32_t way);
    uint32_t pcIndex(uint64_t pc) const;
    std::vector<uint16_t> weightSlots() const;
    int sumWeights(uint32_t pc_index,
                   const std::vector<uint16_t> &slots) const;
    void train(uint32_t pc_index,
               const std::vector<uint16_t> &slots, bool friendly);
    SamplerSet *sampler(uint32_t set);
    void updateHistory(uint64_t pc);

    GliderConfig config_;
    uint8_t max_rrpv_ = 7;
    uint32_t ways_ = 0;
    uint32_t num_sets_ = 0;
    uint32_t sample_period_ = 1;
    uint32_t history_len_ = 128;

    std::vector<LineState> lines_;
    std::vector<SamplerSet> samplers_;
    /** ISVM weight tables: entries x weights_per_entry. */
    std::vector<int16_t> weights_;
    /** PC history register (most recent last). */
    std::deque<uint64_t> history_;
};

} // namespace rlr::policies

#endif // RLR_POLICIES_GLIDER_HH
