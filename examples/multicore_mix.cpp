/**
 * @file
 * Four benchmarks sharing an 8MB LLC: compares LRU against the
 * multicore RLR extension (Section IV-D core priorities) and
 * shows per-core fairness.
 */

#include <cstdio>

#include "sim/experiment.hh"
#include "util/args.hh"

using namespace rlr;

int
main(int argc, char **argv)
{
    util::ArgParser parser("4-core shared-LLC mix under RLR-mc");
    parser.addOption("instructions", "800000",
                     "Measured instructions per core");
    parser.addOption(
        "mix", "429.mcf,471.omnetpp,416.gamess,462.libquantum",
        "Comma-separated 4-benchmark mix");
    if (!parser.parse(argc, argv))
        return 0;

    const auto mix = parser.getList("mix");
    if (mix.size() != 4) {
        std::fprintf(stderr, "need exactly 4 workloads\n");
        return 1;
    }

    sim::SimParams params;
    params.warmup_instructions = 400'000;
    params.sim_instructions = parser.getUint("instructions");

    params.llc_policy = "LRU";
    const auto base = sim::runWorkloads(mix, params);
    params.llc_policy = "RLR-mc";
    const auto rlr_run = sim::runWorkloads(mix, params);

    std::printf("4-core mix on an 8MB shared LLC "
                "(per-core IPC):\n\n");
    std::printf("%-16s %10s %10s %9s\n", "workload", "LRU",
                "RLR-mc", "speedup");
    for (size_t c = 0; c < 4; ++c) {
        std::printf("%-16s %10.4f %10.4f %+8.2f%%\n",
                    mix[c].c_str(), base.cores[c].ipc,
                    rlr_run.cores[c].ipc,
                    100.0 * (rlr_run.cores[c].ipc /
                                 base.cores[c].ipc -
                             1.0));
    }
    std::printf("\nmix geomean speedup: %+.2f%% | LLC demand hit "
                "rate: %.1f%% -> %.1f%%\n",
                100.0 * (rlr_run.speedupOver(base) - 1.0),
                100.0 * base.llcDemandHitRate(),
                100.0 * rlr_run.llcDemandHitRate());
    return 0;
}
