#include "util/format.hh"

#include <charconv>
#include <cstdio>

namespace rlr::util
{

namespace
{

struct Spec
{
    char align = 0;    // '<', '>' or 0 (default by type)
    int width = 0;     // 0 = none
    int precision = -1; // -1 = none
    char type = 0;     // 'f', 'x', or 0
};

std::string
applyPad(std::string body, const Spec &spec, bool numeric)
{
    if (static_cast<int>(body.size()) >= spec.width)
        return body;
    const size_t pad = spec.width - body.size();
    char align = spec.align;
    if (align == 0)
        align = numeric ? '>' : '<';
    if (align == '>')
        return std::string(pad, ' ') + body;
    return body + std::string(pad, ' ');
}

std::string
renderFloat(double v, const Spec &spec)
{
    const int prec = spec.precision >= 0 ? spec.precision : 6;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
renderInt(int64_t v, const Spec &spec)
{
    char buf[32];
    if (spec.type == 'x')
        std::snprintf(buf, sizeof(buf), "%llx",
                      static_cast<unsigned long long>(v));
    else
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
    return buf;
}

std::string
renderUint(uint64_t v, const Spec &spec)
{
    char buf[32];
    if (spec.type == 'x')
        std::snprintf(buf, sizeof(buf), "%llx",
                      static_cast<unsigned long long>(v));
    else
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(v));
    return buf;
}

std::string
renderArg(const FmtArg &arg, const Spec &spec)
{
    bool numeric = true;
    std::string body;
    switch (arg.kind()) {
      case FmtArg::Kind::Int:
        body = renderInt(arg.asInt(), spec);
        break;
      case FmtArg::Kind::Uint:
        body = renderUint(arg.asUint(), spec);
        break;
      case FmtArg::Kind::Float:
        body = renderFloat(arg.asFloat(), spec);
        break;
      case FmtArg::Kind::Bool:
        body = arg.asUint() ? "true" : "false";
        numeric = false;
        break;
      case FmtArg::Kind::Char:
        body = std::string(1, static_cast<char>(arg.asUint()));
        numeric = false;
        break;
      case FmtArg::Kind::Str:
        body = std::string(arg.asStr());
        numeric = false;
        break;
    }
    return applyPad(std::move(body), spec, numeric);
}

// Parses an unsigned integer at fmt[pos...]; advances pos.
int
parseNumber(std::string_view fmt, size_t &pos)
{
    int v = 0;
    while (pos < fmt.size() && fmt[pos] >= '0' && fmt[pos] <= '9') {
        v = v * 10 + (fmt[pos] - '0');
        ++pos;
    }
    return v;
}

} // namespace

int64_t
FmtArg::asInt() const
{
    if (kind_ == Kind::Uint)
        return static_cast<int64_t>(u_);
    return i_;
}

std::string
vformat(std::string_view fmt, std::span<const FmtArg> args)
{
    std::string out;
    out.reserve(fmt.size() + 16);
    size_t next_arg = 0;

    auto take_arg = [&]() -> const FmtArg & {
        static const FmtArg missing{std::string_view("<missing>")};
        if (next_arg >= args.size())
            return missing;
        return args[next_arg++];
    };

    for (size_t i = 0; i < fmt.size(); ++i) {
        const char c = fmt[i];
        if (c == '}' ) {
            if (i + 1 < fmt.size() && fmt[i + 1] == '}')
                ++i;
            out += '}';
            continue;
        }
        if (c != '{') {
            out += c;
            continue;
        }
        if (i + 1 < fmt.size() && fmt[i + 1] == '{') {
            out += '{';
            ++i;
            continue;
        }

        // Parse a replacement field. Dynamic width/precision args
        // are consumed after the value arg, matching std::format's
        // automatic indexing order.
        size_t pos = i + 1;
        Spec spec;
        bool dyn_width = false;
        bool dyn_precision = false;
        if (pos < fmt.size() && fmt[pos] == ':') {
            ++pos;
            if (pos < fmt.size() &&
                (fmt[pos] == '<' || fmt[pos] == '>')) {
                spec.align = fmt[pos];
                ++pos;
            }
            if (pos + 1 < fmt.size() && fmt[pos] == '{' &&
                fmt[pos + 1] == '}') {
                dyn_width = true;
                pos += 2;
            } else {
                spec.width = parseNumber(fmt, pos);
            }
            if (pos < fmt.size() && fmt[pos] == '.') {
                ++pos;
                if (pos + 1 < fmt.size() && fmt[pos] == '{' &&
                    fmt[pos + 1] == '}') {
                    dyn_precision = true;
                    pos += 2;
                } else {
                    spec.precision = parseNumber(fmt, pos);
                }
            }
            if (pos < fmt.size() && fmt[pos] != '}') {
                spec.type = fmt[pos];
                ++pos;
            }
        }
        // Skip to the closing brace (tolerate unknown spec chars).
        while (pos < fmt.size() && fmt[pos] != '}')
            ++pos;
        const FmtArg &value = take_arg();
        if (dyn_width)
            spec.width = static_cast<int>(take_arg().asInt());
        if (dyn_precision)
            spec.precision = static_cast<int>(take_arg().asInt());
        out += renderArg(value, spec);
        i = pos;
    }
    return out;
}

} // namespace rlr::util
