file(REMOVE_RECURSE
  "CMakeFiles/test_rlr.dir/test_rlr.cc.o"
  "CMakeFiles/test_rlr.dir/test_rlr.cc.o.d"
  "test_rlr"
  "test_rlr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rlr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
