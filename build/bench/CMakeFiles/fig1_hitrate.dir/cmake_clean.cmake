file(REMOVE_RECURSE
  "CMakeFiles/fig1_hitrate.dir/fig1_hitrate.cc.o"
  "CMakeFiles/fig1_hitrate.dir/fig1_hitrate.cc.o.d"
  "fig1_hitrate"
  "fig1_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
