/**
 * @file
 * Snapshot export/import: JSON and text serialization of a
 * stats::Snapshot, plus the minimal JSON reader shared by the
 * round-trip path and the report generator (tools/report), which
 * consumes SweepRunner --json exports.
 *
 * The JSON layout of a snapshot is
 *
 *   {
 *     "counters":   { "llc.LD_hit": 123, ... },
 *     "formulas":   { "llc.demand_hit_rate": 0.5, ... },
 *     "histograms": { "dram.read_latency":
 *                       { "bucket_width": 16,
 *                         "buckets": [1, 2, ...],
 *                         "overflow": 0 }, ... }
 *   }
 *
 * with keys in registration order. toJson/fromJson round-trip
 * counters and histograms exactly (integers); formula values are
 * doubles printed with enough digits for a stable golden file.
 */

#ifndef RLR_STATS_EXPORT_HH
#define RLR_STATS_EXPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "stats/registry.hh"

namespace rlr::stats
{

namespace json
{

/** One parsed JSON value (small recursive DOM). */
struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    /** Insertion-ordered object members. */
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member by key; nullptr when absent (or not object). */
    const Value *find(const std::string &key) const;

    /** Member as number/string with a default when absent/null. */
    double numberOr(const std::string &key, double def) const;
    std::string stringOr(const std::string &key,
                         std::string def) const;
};

/**
 * Parse a complete JSON document.
 * @throws std::runtime_error on malformed input
 */
Value parse(const std::string &text);

/** Escape a string for embedding in JSON (no quotes added). */
std::string escape(const std::string &s);

/** Format a double as a JSON number (null when non-finite). */
std::string number(double v);

} // namespace json

/** Serialize a snapshot (layout documented above). */
std::string toJson(const Snapshot &snap);

/**
 * Rebuild a snapshot from toJson() output (counters and
 * histograms round-trip exactly).
 * @throws std::runtime_error on malformed input
 */
Snapshot fromJson(const std::string &text);

/** Parse a snapshot out of an already-parsed JSON object. */
Snapshot fromJson(const json::Value &root);

/** "path value" lines in registration order (human dump). */
std::string toText(const Snapshot &snap);

} // namespace rlr::stats

#endif // RLR_STATS_EXPORT_HH
